"""A page-oriented B+ tree over integer keys.

The tree mirrors how InnoDB's clustered index drives the artifacts the paper
cares about:

* every traversal touches a **root-to-leaf path of pages**, and each touch is
  reported to the buffer pool — so the ``ib_buffer_pool`` dump later reveals
  "the paths through the B+ tree that MySQL took" for past SELECTs (§3);
* leaf records are raw row bytes, so page images carry the byte-level data
  that disk-theft forensics parses.

Internal entries are ``(separator_key, child_page_id)`` rows; leaf entries
are ``(key, payload_bytes)`` rows. Deletion never rebalances partially
filled nodes (InnoDB also merges lazily), but a leaf emptied by a delete is
unlinked from its parent and freed — cascading through internals that empty
out, and collapsing a single-child root — so dead pages do not linger on
scan paths or in page counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError
from .page import Page, PageType
from .record import decode_row, encode_row
from .tablespace import Tablespace

TouchCallback = Callable[[int, int, int], None]
"""``(space_id, page_id, level)`` notification for every page access."""

#: Separator for the leftmost child of an internal node: smaller than any
#: encodable key, so internal entries stay sorted no matter what is inserted
#: to the left later.
_NEG_INF = -(1 << 63)


@dataclass
class AccessPath:
    """Pages touched by one tree operation, root first."""

    page_ids: List[int] = field(default_factory=list)

    def touch(self, page_id: int) -> None:
        self.page_ids.append(page_id)


def _leaf_entry(key: int, payload: bytes) -> bytes:
    return encode_row((key, payload))


def _decode_leaf_entry(record: bytes) -> Tuple[int, bytes]:
    row, _ = decode_row(record)
    key, payload = row
    if not isinstance(key, int) or not isinstance(payload, bytes):
        raise StorageError("corrupt leaf entry")
    return key, payload


def _internal_entry(key: int, child: int) -> bytes:
    return encode_row((key, child))


def _decode_internal_entry(record: bytes) -> Tuple[int, int]:
    row, _ = decode_row(record)
    key, child = row
    if not isinstance(key, int) or not isinstance(child, int):
        raise StorageError("corrupt internal entry")
    return key, child


class BTree:
    """B+ tree with configurable fanout.

    Parameters
    ----------
    tablespace:
        Where pages live.
    max_entries:
        Split threshold per node. Small values (the tests use 4) force deep
        trees; the default 64 keeps a 10k-row table at depth 3 like a real
        small InnoDB index.
    on_touch:
        Optional callback invoked for every page access — the buffer pool
        hook.
    """

    def __init__(
        self,
        tablespace: Tablespace,
        max_entries: int = 64,
        on_touch: Optional[TouchCallback] = None,
    ) -> None:
        if max_entries < 3:
            raise StorageError(f"max_entries must be >= 3, got {max_entries}")
        self._space = tablespace
        self._max_entries = max_entries
        self._on_touch = on_touch
        root = tablespace.allocate(PageType.INDEX_LEAF, level=0)
        self._root_id = root.page_id
        self._size = 0
        # Decoded-record cache: page_id -> (page.version, decoded entries).
        # Pages are re-decoded only after mutation; callers treat the cached
        # lists as read-only. Under heavy traffic this removes the dominant
        # per-operation cost (re-parsing every page on every descent).
        self._decoded: Dict[int, Tuple[int, list]] = {}

    # -- plumbing ----------------------------------------------------------

    @property
    def root_page_id(self) -> int:
        return self._root_id

    @property
    def size(self) -> int:
        """Number of live keys."""
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a single leaf)."""
        page = self._page(self._root_id, record_touch=False)
        return page.level + 1

    def _page(self, page_id: int, record_touch: bool = True, path: Optional[AccessPath] = None) -> Page:
        page = self._space.page(page_id)
        if record_touch and self._on_touch is not None:
            self._on_touch(self._space.space_id, page_id, page.level)
        if path is not None:
            path.touch(page_id)
        return page

    def _leaf_entries(self, page: Page) -> List[Tuple[int, bytes]]:
        cached = self._decoded.get(page.page_id)
        if cached is not None and cached[0] == page.version:
            return cached[1]
        entries = [_decode_leaf_entry(r) for r in page.records]
        self._decoded[page.page_id] = (page.version, entries)
        return entries

    def _internal_entries(self, page: Page) -> List[Tuple[int, int]]:
        cached = self._decoded.get(page.page_id)
        if cached is not None and cached[0] == page.version:
            return cached[1]
        entries = [_decode_internal_entry(r) for r in page.records]
        self._decoded[page.page_id] = (page.version, entries)
        return entries

    def _rewrite(self, page: Page, records: List[bytes]) -> None:
        while page.num_records:
            page.delete(page.num_records - 1)
        for record in records:
            page.insert(record)

    # -- descent -----------------------------------------------------------

    def _descend(self, key: int, path: AccessPath) -> Page:
        """Walk from root to the leaf that should hold ``key``."""
        page = self._page(self._root_id, path=path)
        while page.page_type is PageType.INDEX_INTERNAL:
            entries = self._internal_entries(page)
            child_id = entries[0][1]
            for sep, child in entries:
                if key >= sep:
                    child_id = child
                else:
                    break
            page = self._page(child_id, path=path)
        return page

    # -- public operations ---------------------------------------------------

    def insert(self, key: int, payload: bytes) -> AccessPath:
        """Insert ``(key, payload)``; raises on duplicate key."""
        path = AccessPath()
        stack = self._descend_with_stack(key, path)
        leaf = stack[-1]
        entries = self._leaf_entries(leaf)
        keys = [k for k, _ in entries]
        slot = self._insert_position(keys, key)
        if slot < len(keys) and keys[slot] == key:
            raise StorageError(f"duplicate key {key}")
        leaf.insert(_leaf_entry(key, payload), slot)
        # Patch the decoded cache in place instead of re-parsing the leaf.
        entries.insert(slot, (key, payload))
        self._decoded[leaf.page_id] = (leaf.version, entries)
        self._size += 1
        self._split_up(stack)
        return path

    def get(self, key: int) -> Tuple[Optional[bytes], AccessPath]:
        """Point lookup; returns ``(payload or None, access path)``."""
        path = AccessPath()
        leaf = self._descend(key, path)
        for entry_key, payload in self._leaf_entries(leaf):
            if entry_key == key:
                return payload, path
        return None, path

    def update(self, key: int, payload: bytes) -> Tuple[bytes, AccessPath]:
        """Replace the payload for ``key``; returns ``(old payload, path)``."""
        path = AccessPath()
        leaf = self._descend(key, path)
        entries = self._leaf_entries(leaf)
        for slot, (entry_key, old_payload) in enumerate(entries):
            if entry_key == key:
                leaf.replace(slot, _leaf_entry(key, payload))
                entries[slot] = (key, payload)
                self._decoded[leaf.page_id] = (leaf.version, entries)
                return old_payload, path
        raise StorageError(f"update of missing key {key}")

    def delete(self, key: int) -> Tuple[bytes, AccessPath]:
        """Remove ``key``; returns ``(old payload, path)``.

        A leaf emptied by the delete is unlinked from its parent and freed
        (see :meth:`_unlink_empty`); the root page is never freed, so an
        empty tree degenerates back to a single empty leaf.
        """
        path = AccessPath()
        stack = self._descend_with_stack(key, path)
        leaf = stack[-1]
        entries = self._leaf_entries(leaf)
        for slot, (entry_key, old_payload) in enumerate(entries):
            if entry_key == key:
                leaf.delete(slot)
                entries.pop(slot)
                self._decoded[leaf.page_id] = (leaf.version, entries)
                self._size -= 1
                if not entries and len(stack) > 1:
                    self._unlink_empty(stack)
                return old_payload, path
        raise StorageError(f"delete of missing key {key}")

    def range(
        self, low: Optional[int], high: Optional[int]
    ) -> Tuple[List[Tuple[int, bytes]], AccessPath]:
        """Inclusive range scan; returns matches and the touched path.

        Walks root-to-leaf for the start key, then advances leaf-to-leaf via
        the parent stack (InnoDB follows leaf sibling pointers; the set of
        touched pages is the same modulo internal revisits).
        """
        path = AccessPath()
        results: List[Tuple[int, bytes]] = []
        start_key = low if low is not None else _NEG_INF + 1
        # Descend, remembering which child index was taken at each level.
        stack: List[Tuple[Page, int]] = []
        page = self._page(self._root_id, path=path)
        while page.page_type is PageType.INDEX_INTERNAL:
            entries = self._internal_entries(page)
            chosen = 0
            for idx, (sep, _) in enumerate(entries):
                if start_key >= sep:
                    chosen = idx
                else:
                    break
            stack.append((page, chosen))
            page = self._page(entries[chosen][1], path=path)

        while True:
            for entry_key, payload in self._leaf_entries(page):
                if low is not None and entry_key < low:
                    continue
                if high is not None and entry_key > high:
                    return results, path
                results.append((entry_key, payload))
            # Advance to the successor leaf via the nearest ancestor that
            # still has a right sibling child.
            while stack and stack[-1][1] + 1 >= stack[-1][0].num_records:
                stack.pop()
            if not stack:
                return results, path
            parent, idx = stack.pop()
            entries = self._internal_entries(parent)
            # Prune: if the subtree to the right starts past `high`, stop
            # without touching it (a real scan stops at the fence key too).
            if high is not None and entries[idx + 1][0] > high:
                return results, path
            stack.append((parent, idx + 1))
            page = self._page(entries[idx + 1][1], path=path)
            while page.page_type is PageType.INDEX_INTERNAL:
                entries = self._internal_entries(page)
                stack.append((page, 0))
                page = self._page(entries[0][1], path=path)

    def scan(self) -> Iterator[Tuple[int, bytes]]:
        """Full in-order iteration without recording buffer-pool touches.

        Used by maintenance/forensics code that must not perturb the cache.
        """
        yield from self._scan_page(self._root_id)

    def _scan_page(self, page_id: int) -> Iterator[Tuple[int, bytes]]:
        page = self._page(page_id, record_touch=False)
        if page.page_type is PageType.INDEX_LEAF:
            for record in page.records:
                yield _decode_leaf_entry(record)
        else:
            for _, child in self._internal_entries(page):
                yield from self._scan_page(child)

    # -- split machinery -----------------------------------------------------

    def _descend_with_stack(self, key: int, path: AccessPath) -> List[Page]:
        stack = [self._page(self._root_id, path=path)]
        while stack[-1].page_type is PageType.INDEX_INTERNAL:
            entries = self._internal_entries(stack[-1])
            child_id = entries[0][1]
            for sep, child in entries:
                if key >= sep:
                    child_id = child
                else:
                    break
            stack.append(self._page(child_id, path=path))
        return stack

    def _split_up(self, stack: List[Page]) -> None:
        """Split overflowing nodes from leaf upward."""
        child = stack.pop()
        while child.num_records > self._max_entries:
            mid = child.num_records // 2
            records = child.records
            left_records, right_records = records[:mid], records[mid:]
            right = self._space.allocate(child.page_type, level=child.level)
            self._rewrite(child, left_records)
            self._rewrite(right, right_records)
            if child.page_type is PageType.INDEX_LEAF:
                sep_key = _decode_leaf_entry(right_records[0])[0]
            else:
                sep_key = _decode_internal_entry(right_records[0])[0]

            if stack:
                parent = stack.pop()
                entries = parent.records
                # Insert the new separator just after the child's entry.
                insert_at = len(entries)
                for idx, record in enumerate(entries):
                    _, child_id = _decode_internal_entry(record)
                    if child_id == child.page_id:
                        insert_at = idx + 1
                        break
                entries.insert(insert_at, _internal_entry(sep_key, right.page_id))
                self._rewrite(parent, entries)
                child = parent
            else:
                # Root split: allocate a new root one level up.
                new_root = self._space.allocate(
                    PageType.INDEX_INTERNAL, level=child.level + 1
                )
                new_root.insert(_internal_entry(_NEG_INF, child.page_id))
                new_root.insert(_internal_entry(sep_key, right.page_id))
                self._root_id = new_root.page_id
                return

    def _unlink_empty(self, stack: List[Page]) -> None:
        """Free the emptied node at the top of ``stack``.

        Removes its entry from the parent (the surviving first child, if the
        removed slot was 0, inherits the ``-inf`` separator so internal
        entries stay sorted), cascades while ancestors empty out, and finally
        collapses a root left with a single child. Internal roots always hold
        at least two entries between operations, so the root itself can never
        empty here.
        """
        dead = stack.pop()
        while stack:
            parent = stack.pop()
            records = parent.records
            remove_at = None
            for idx, record in enumerate(records):
                _, child_id = _decode_internal_entry(record)
                if child_id == dead.page_id:
                    remove_at = idx
                    break
            self._space.free(dead.page_id)
            self._decoded.pop(dead.page_id, None)
            if remove_at is None:
                raise StorageError(
                    f"page {dead.page_id} missing from parent {parent.page_id}"
                )
            records.pop(remove_at)
            if remove_at == 0 and records:
                _, first_child = _decode_internal_entry(records[0])
                records[0] = _internal_entry(_NEG_INF, first_child)
                self._rewrite(parent, records)
                self._fix_leftmost_spine(first_child)
            else:
                self._rewrite(parent, records)
            if parent.num_records:
                break
            dead = parent
        self._collapse_root()

    def _collapse_root(self) -> None:
        """While the root is an internal page with one child, promote the
        child and free the old root."""
        page = self._page(self._root_id, record_touch=False)
        while page.page_type is PageType.INDEX_INTERNAL and page.num_records == 1:
            child_id = self._internal_entries(page)[0][1]
            self._space.free(page.page_id)
            self._decoded.pop(page.page_id, None)
            self._root_id = child_id
            page = self._page(child_id, record_touch=False)
        self._fix_leftmost_spine(self._root_id)

    def _fix_leftmost_spine(self, page_id: int) -> None:
        """Restore the leftmost-spine invariant below ``page_id``.

        Every internal node on the leftmost spine of the tree must carry the
        ``-inf`` separator in slot 0 (descent routes keys smaller than the
        first real separator into the first child). A node that *becomes*
        leftmost — promoted to root, or made the first child after its left
        sibling was unlinked — may still carry a real slot-0 separator from
        when it was split off; without this rewrite, keys below that
        separator route into its first subtree and later splits emit
        out-of-order parent separators. Stops early once it finds ``-inf``:
        by induction everything below is already leftmost-clean.
        """
        while True:
            page = self._page(page_id, record_touch=False)
            if page.page_type is not PageType.INDEX_INTERNAL:
                return
            records = page.records
            sep, first_child = _decode_internal_entry(records[0])
            if sep == _NEG_INF:
                return
            records[0] = _internal_entry(_NEG_INF, first_child)
            self._rewrite(page, records)
            page_id = first_child

    def min_key(self) -> Optional[int]:
        """Smallest live key (``None`` when empty); maintenance path, no
        buffer-pool touches."""
        page = self._page(self._root_id, record_touch=False)
        while page.page_type is PageType.INDEX_INTERNAL:
            entries = self._internal_entries(page)
            page = self._page(entries[0][1], record_touch=False)
        entries = self._leaf_entries(page)
        if entries:
            return entries[0][0]
        # Only an empty root leaf has no entries (emptied non-root leaves
        # are unlinked), so the tree is empty here.
        return None

    @staticmethod
    def _insert_position(keys: List[int], key: int) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

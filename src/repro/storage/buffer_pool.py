"""LRU buffer pool with an ``ib_buffer_pool``-style dump file.

Paper §3 ("Inferring reads"): "On shutdown and at other points during normal
server operation, MySQL creates a file in the data directory containing the
current pages in the buffer pool in LRU order. This is done to avoid a
'warm-up' period ... This file reveals information about several previous
SELECT queries, such as the paths through the B+ tree that MySQL took when
evaluating them."

:class:`BufferPool` tracks ``(space_id, page_id)`` references in LRU order
with per-page access counters (the counters also feed the adaptive hash
index, §5). :meth:`BufferPool.dump` emits the dump file; the parser lives in
:mod:`repro.forensics.buffer_pool_dump`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import BufferPoolError


@dataclass(frozen=True)
class PageRef:
    """A buffer-pool resident page: identity, level, and access count."""

    space_id: int
    page_id: int
    level: int
    access_count: int


@dataclass(frozen=True)
class BufferPoolDump:
    """The serialized dump: page refs in LRU order, most recent first.

    Like MySQL's ``ib_buffer_pool`` file this contains only page identities
    (plus, in our simulation, the tree level and access counter that InnoDB
    keeps in its in-memory page descriptors).
    """

    entries: Tuple[PageRef, ...]

    def to_text(self) -> str:
        """Render the on-disk dump format (one ``space,page`` pair per line)."""
        lines = ["# repro ib_buffer_pool dump (MRU first)"]
        for ref in self.entries:
            lines.append(
                f"{ref.space_id},{ref.page_id},{ref.level},{ref.access_count}"
            )
        return "\n".join(lines) + "\n"


class BufferPool:
    """Fixed-capacity LRU page cache.

    Parameters
    ----------
    capacity:
        Maximum resident pages. MySQL's default pool is 128 MiB / 16 KiB =
        8192 pages; tests use tiny capacities to force eviction.
    """

    DEFAULT_CAPACITY = 8192

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        instrumentation=None,
    ) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        if instrumentation is None:
            from ..obs.instrumentation import NO_OP_INSTRUMENTATION

            instrumentation = NO_OP_INSTRUMENTATION
        self._obs = instrumentation
        # key -> (level, access_count); insertion order tracks recency
        # (last item = most recently used).
        self._pages: "OrderedDict[Tuple[int, int], Tuple[int, int]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- access ------------------------------------------------------------

    def touch(self, space_id: int, page_id: int, level: int = 0) -> None:
        """Record an access to ``(space_id, page_id)``, evicting LRU if full."""
        key = (space_id, page_id)
        if key in self._pages:
            _, count = self._pages.pop(key)
            self._pages[key] = (level, count + 1)
            self._hits += 1
            self._obs.count("buffer_pool.hits")
            return
        self._misses += 1
        self._obs.count("buffer_pool.misses")
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self._evictions += 1
            self._obs.count("buffer_pool.evictions")
        self._pages[key] = (level, 1)

    def contains(self, space_id: int, page_id: int) -> bool:
        return (space_id, page_id) in self._pages

    def access_count(self, space_id: int, page_id: int) -> int:
        """Access counter for a resident page (0 if evicted/never seen)."""
        entry = self._pages.get((space_id, page_id))
        return entry[1] if entry else 0

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters (feeds the performance schema)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "resident": len(self._pages),
        }

    # -- dump ----------------------------------------------------------------

    def lru_order(self) -> List[PageRef]:
        """Resident pages, most-recently-used first."""
        refs = []
        for (space_id, page_id), (level, count) in reversed(self._pages.items()):
            refs.append(
                PageRef(
                    space_id=space_id,
                    page_id=page_id,
                    level=level,
                    access_count=count,
                )
            )
        return refs

    def dump(self) -> BufferPoolDump:
        """Produce the ``ib_buffer_pool`` dump artifact (MRU-first)."""
        return BufferPoolDump(entries=tuple(self.lru_order()))

    def clear(self) -> None:
        """Drop all resident pages (server restart without warm-up)."""
        self._pages.clear()

"""Fixed-size storage pages.

Pages are the unit of buffer-pool caching and of B+-tree structure, mirroring
InnoDB's 16 KiB pages. A page holds slotted byte records plus a small header
(page id, type, level). ``to_bytes``/``from_bytes`` give the raw on-disk
image that disk-theft forensics parses.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..errors import PageError
from ..util.serialization import encode_bytes, encode_uint, decode_bytes, read_uint

#: InnoDB default page size.
PAGE_SIZE = 16 * 1024

_HEADER_SIZE = 16  # page_id(4) + type(4) + level(4) + nrecords(4)


class PageType(enum.Enum):
    """What a page stores (subset of InnoDB page types)."""

    INDEX_INTERNAL = 1
    INDEX_LEAF = 2
    ALLOCATED = 3  # reserved but not yet structured


class Page:
    """A slotted page of serialized records.

    Parameters
    ----------
    page_id:
        Identity within its tablespace.
    page_type:
        Structural role (internal/leaf).
    level:
        B+-tree level, 0 for leaves.
    capacity:
        Byte budget for records (header excluded); defaults to
        :data:`PAGE_SIZE` minus the header.
    """

    def __init__(
        self,
        page_id: int,
        page_type: PageType = PageType.ALLOCATED,
        level: int = 0,
        capacity: int = PAGE_SIZE - _HEADER_SIZE,
    ) -> None:
        if page_id < 0:
            raise PageError(f"page id must be non-negative, got {page_id}")
        if capacity <= 0:
            raise PageError(f"page capacity must be positive, got {capacity}")
        self.page_id = page_id
        self.page_type = page_type
        self.level = level
        self.capacity = capacity
        self._records: List[bytes] = []
        self._used = 0
        #: Bumped on every mutation; lets caches of decoded records detect
        #: staleness without hashing page contents.
        self.version = 0

    # -- record management -----------------------------------------------

    @property
    def records(self) -> List[bytes]:
        """The stored record byte strings (copy-safe view)."""
        return list(self._records)

    @property
    def num_records(self) -> int:
        return len(self._records)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def record_fits(self, record: bytes) -> bool:
        """Whether ``record`` (plus its length prefix) fits in free space."""
        return len(record) + 4 <= self.free_bytes

    def insert(self, record: bytes, slot: Optional[int] = None) -> int:
        """Insert ``record`` at ``slot`` (append if ``None``); return slot."""
        if not self.record_fits(record):
            raise PageError(
                f"page {self.page_id} overflow: record of {len(record)} bytes, "
                f"{self.free_bytes} free"
            )
        if slot is None:
            slot = len(self._records)
        if not 0 <= slot <= len(self._records):
            raise PageError(f"bad slot {slot} for page with {len(self._records)} records")
        self._records.insert(slot, bytes(record))
        self._used += len(record) + 4
        self.version += 1
        return slot

    def read(self, slot: int) -> bytes:
        """Read the record at ``slot``."""
        self._check_slot(slot)
        return self._records[slot]

    def replace(self, slot: int, record: bytes) -> bytes:
        """Overwrite ``slot`` with ``record``; return the old bytes."""
        self._check_slot(slot)
        old = self._records[slot]
        delta = len(record) - len(old)
        if delta > self.free_bytes:
            raise PageError(
                f"page {self.page_id} overflow replacing slot {slot}"
            )
        self._records[slot] = bytes(record)
        self._used += delta
        self.version += 1
        return old

    def delete(self, slot: int) -> bytes:
        """Remove and return the record at ``slot``."""
        self._check_slot(slot)
        old = self._records.pop(slot)
        self._used -= len(old) + 4
        self.version += 1
        return old

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._records):
            raise PageError(
                f"bad slot {slot} for page {self.page_id} "
                f"({len(self._records)} records)"
            )

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the raw page image (header + length-prefixed records)."""
        parts = [
            encode_uint(self.page_id),
            encode_uint(self.page_type.value),
            encode_uint(self.level),
            encode_uint(len(self._records)),
        ]
        parts.extend(encode_bytes(record) for record in self._records)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, capacity: int = PAGE_SIZE - _HEADER_SIZE) -> "Page":
        """Parse a page image produced by :meth:`to_bytes`."""
        page_id, offset = read_uint(data, 0)
        type_value, offset = read_uint(data, offset)
        level, offset = read_uint(data, offset)
        count, offset = read_uint(data, offset)
        try:
            page_type = PageType(type_value)
        except ValueError:
            raise PageError(f"unknown page type {type_value}") from None
        page = cls(page_id, page_type, level, capacity)
        for _ in range(count):
            record, offset = decode_bytes(data, offset)
            page.insert(record)
        return page

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, type={self.page_type.name}, "
            f"level={self.level}, records={len(self._records)})"
        )

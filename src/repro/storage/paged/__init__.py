"""Paged on-disk storage: single-file tablespaces behind a frame pool.

This package is the simulation's real-I/O storage engine (ROADMAP item 2):
each table is one ``.ibd``-style file of 4 KB pages (:mod:`.page_file`),
every page read/write goes through a fixed-budget frame-based buffer pool
with pin/unpin, dirty tracking, and LRU/clock eviction
(:mod:`.buffer_pool`), and rows live in a paged B+-tree with clustered and
secondary indexes (:mod:`.btree`, :mod:`.table`).

The point, for the paper, is that the leakage surfaces stop being
simulated: the ``ib_buffer_pool`` dump is emitted from *actual resident
frames*, tablespace images are *read back from disk* (header page,
free-list chain, and dead-page residue included), and a checkpoint LSN is
persisted in the file header — all registered as snapshot artifacts.
"""

from .format import (
    PAGE_CAPACITY,
    PAGE_HEADER_SIZE,
    PAGED_PAGE_SIZE,
    PagedPageType,
)
from .page_file import PageFile
from .buffer_pool import BufferPoolManager, EvictionPolicy, Frame
from .btree import PagedBTree
from .table import PagedTable, SecondaryIndexDef

__all__ = [
    "PAGED_PAGE_SIZE",
    "PAGE_CAPACITY",
    "PAGE_HEADER_SIZE",
    "PagedPageType",
    "PageFile",
    "BufferPoolManager",
    "EvictionPolicy",
    "Frame",
    "PagedBTree",
    "PagedTable",
    "SecondaryIndexDef",
]

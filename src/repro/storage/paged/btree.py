"""Paged B+-tree: every page access pins a frame in the buffer pool.

Mirrors the API of the seed's :class:`repro.storage.btree.BTree` (same
operation set, same :class:`~repro.storage.btree.AccessPath` result shape,
same error messages) but over real 4 KB page files:

* descents pin one frame per level, releasing the parent as soon as the
  child is pinned (lock-crabbing without the locks — single-threaded per
  shard);
* leaves form a doubly-linked chain (``prev_page``/``next_page``), so range
  scans follow sibling pointers instead of re-walking parents;
* splits are byte-budget driven (a node splits when its serialized form
  exceeds the 4 KB payload area), not entry-count driven;
* **deletion unlinks**: a leaf emptied by a delete is spliced out of the
  chain, removed from its parent, and its page goes to the free list
  (payload residue intact — see :mod:`.page_file`); empty internal nodes
  cascade, and a one-child internal root collapses into its child.

``bulk_load`` is the sorted-build fast path: it writes leaves and internal
levels straight to the file at ~90% fill, bypassing the pool the way a real
engine's sorted index build bypasses the buffer pool.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ...errors import StorageError
from ..btree import AccessPath
from .buffer_pool import BufferPoolManager, Frame
from .format import NO_PAGE, PAGE_CAPACITY
from .node import (
    INTERNAL_ENTRY_SIZE,
    LEAF_ENTRY_OVERHEAD,
    NEG_INF,
    InternalNode,
    LeafNode,
)
from .page_file import PageFile

MetaCallback = Callable[[int, int], None]
"""``(root_page_id, size)`` notification whenever either changes."""

#: Bulk-load fill target — leaves ~10% slack for follow-up inserts.
BULK_FILL_BYTES = PAGE_CAPACITY * 9 // 10


def _leaf_slot(entries: List[Tuple[int, bytes]], key: int) -> int:
    """bisect_left over leaf entries without materializing a key list."""
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class PagedBTree:
    """B+-tree over one :class:`PageFile`, cached by one pool.

    Parameters
    ----------
    pool / file:
        The buffer pool all page I/O goes through and the tablespace that
        owns the pages.
    root_page_id / size:
        Persisted tree metadata (from the tablespace header); ``NO_PAGE``
        root means "create a fresh empty tree".
    on_meta:
        Callback persisting ``(root_page_id, size)`` back into the header
        whenever either changes.
    """

    def __init__(
        self,
        pool: BufferPoolManager,
        file: PageFile,
        root_page_id: int = NO_PAGE,
        size: int = 0,
        on_meta: Optional[MetaCallback] = None,
    ) -> None:
        self._pool = pool
        self._file = file
        self._on_meta = on_meta
        self._root_id = root_page_id
        self._size = size
        if self._root_id == NO_PAGE:
            frame = pool.new_page(file, lambda pid: LeafNode(pid))
            self._root_id = frame.page_id
            pool.unpin(frame)
            self._meta_changed()

    # -- plumbing ----------------------------------------------------------

    @property
    def root_page_id(self) -> int:
        return self._root_id

    @property
    def size(self) -> int:
        """Number of live keys."""
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a single leaf)."""
        return self._pool.read_node(self._file, self._root_id).level + 1

    def _meta_changed(self) -> None:
        if self._on_meta is not None:
            self._on_meta(self._root_id, self._size)

    def _fetch(self, page_id: int, path: Optional[AccessPath] = None) -> Frame:
        frame = self._pool.fetch(self._file, page_id)
        if path is not None:
            path.touch(page_id)
        return frame

    def _unpin_all(self, frames: List[Frame]) -> None:
        while frames:
            self._pool.unpin(frames.pop())

    # -- descent -----------------------------------------------------------

    def _descend(self, key: int, path: Optional[AccessPath]) -> Frame:
        """Pin the leaf covering ``key``; parents are released on the way."""
        frame = self._fetch(self._root_id, path)
        while isinstance(frame.node, InternalNode):
            try:
                child = self._fetch(frame.node.route(key), path)
            except BaseException:
                self._pool.unpin(frame)
                raise
            self._pool.unpin(frame)
            frame = child
        return frame

    def _descend_with_stack(
        self, key: int, path: Optional[AccessPath]
    ) -> List[Frame]:
        """Pin the whole root-to-leaf path (split/unlink propagation)."""
        stack = [self._fetch(self._root_id, path)]
        try:
            while isinstance(stack[-1].node, InternalNode):
                stack.append(self._fetch(stack[-1].node.route(key), path))
        except BaseException:
            self._unpin_all(stack)
            raise
        return stack

    # -- public operations -------------------------------------------------

    def get(self, key: int) -> Tuple[Optional[bytes], AccessPath]:
        """Point lookup; returns ``(payload or None, access path)``."""
        path = AccessPath()
        frame = self._descend(key, path)
        entries = frame.node.entries
        slot = _leaf_slot(entries, key)
        payload = None
        if slot < len(entries) and entries[slot][0] == key:
            payload = entries[slot][1]
        self._pool.unpin(frame)
        return payload, path

    def insert(self, key: int, payload: bytes) -> AccessPath:
        """Insert ``(key, payload)``; raises on duplicate key."""
        path = AccessPath()
        stack = self._descend_with_stack(key, path)
        leaf = stack[-1].node
        slot = _leaf_slot(leaf.entries, key)
        if slot < len(leaf.entries) and leaf.entries[slot][0] == key:
            self._unpin_all(stack)
            raise StorageError(f"duplicate key {key}")
        try:
            leaf.insert_entry(slot, key, payload)
        except BaseException:
            # insert_entry validates before mutating, so the leaf is
            # untouched and the whole pinned path can be released clean.
            self._unpin_all(stack)
            raise
        self._pool.mark_dirty(stack[-1])
        self._size += 1
        self._split_up(stack)
        self._meta_changed()
        return path

    def update(self, key: int, payload: bytes) -> Tuple[bytes, AccessPath]:
        """Replace the payload for ``key``; returns ``(old payload, path)``."""
        path = AccessPath()
        frame = self._descend(key, path)
        entries = frame.node.entries
        slot = _leaf_slot(entries, key)
        if slot >= len(entries) or entries[slot][0] != key:
            self._pool.unpin(frame)
            raise StorageError(f"update of missing key {key}")
        try:
            old_payload = frame.node.replace_entry(slot, key, payload)
        except BaseException:
            # replace_entry validates before mutating: unpin clean.
            self._pool.unpin(frame)
            raise
        self._pool.unpin(frame, dirty=True)
        return old_payload, path

    def delete(self, key: int) -> Tuple[bytes, AccessPath]:
        """Remove ``key``; returns ``(old payload, path)``.

        Unlike the seed tree's historic behaviour, a leaf emptied here is
        unlinked from the chain and freed immediately (with cascading
        removal of empty ancestors and root collapse), so range scans and
        the buffer-pool dump never see dead pages.
        """
        path = AccessPath()
        stack = self._descend_with_stack(key, path)
        frame = stack.pop()
        leaf = frame.node
        slot = _leaf_slot(leaf.entries, key)
        if slot >= len(leaf.entries) or leaf.entries[slot][0] != key:
            self._pool.unpin(frame)
            self._unpin_all(stack)
            raise StorageError(f"delete of missing key {key}")
        _, old_payload = leaf.pop_entry(slot)
        self._pool.mark_dirty(frame)
        self._size -= 1

        if not leaf.entries and stack:
            self._unlink_leaf(leaf)
            self._pool.unpin(frame)
            self._remove_from_ancestors(leaf.page_id, stack)
            self._collapse_root()
        else:
            self._pool.unpin(frame)
            self._unpin_all(stack)
        self._meta_changed()
        return old_payload, path

    def range(
        self, low: Optional[int], high: Optional[int]
    ) -> Tuple[List[Tuple[int, bytes]], AccessPath]:
        """Inclusive range scan following the leaf sibling chain."""
        path = AccessPath()
        start_key = low if low is not None else NEG_INF + 1
        frame = self._descend(start_key, path)
        results: List[Tuple[int, bytes]] = []
        while True:
            for entry_key, payload in frame.node.entries:
                if low is not None and entry_key < low:
                    continue
                if high is not None and entry_key > high:
                    self._pool.unpin(frame)
                    return results, path
                results.append((entry_key, payload))
            next_page = frame.node.next_page
            self._pool.unpin(frame)
            if next_page == NO_PAGE:
                return results, path
            frame = self._fetch(next_page, path)

    def scan(self) -> Iterator[Tuple[int, bytes]]:
        """Full in-order iteration without touching the buffer pool.

        Maintenance/forensics path: resident (possibly dirty) frames are
        read in place, absent pages come straight off disk uncached, and
        neither stats nor recency move.
        """
        node = self._pool.read_node(self._file, self._root_id)
        while isinstance(node, InternalNode):
            node = self._pool.read_node(self._file, node.entries[0][1])
        while True:
            yield from node.entries
            if node.next_page == NO_PAGE:
                return
            node = self._pool.read_node(self._file, node.next_page)

    def min_key(self) -> Optional[int]:
        """Smallest live key (``None`` when empty); no buffer-pool touches."""
        for key, _ in self.scan():
            return key
        return None

    # -- split machinery ---------------------------------------------------

    def _split_up(self, stack: List[Frame]) -> None:
        """Split overflowing nodes from leaf upward; stack is fully pinned."""
        frame = stack.pop()
        while frame.node.overflowing:
            node = frame.node
            if isinstance(node, LeafNode):
                moved = node.take_upper_half()
                right_frame = self._pool.new_page(
                    self._file,
                    lambda pid: LeafNode(
                        pid,
                        moved,  # noqa: B023 - consumed before next iteration
                        prev_page=node.page_id,
                        next_page=node.next_page,
                    ),
                )
                if node.next_page != NO_PAGE:
                    try:
                        successor = self._fetch(node.next_page)
                    except BaseException:
                        self._pool.unpin(right_frame)
                        self._pool.unpin(frame)
                        self._unpin_all(stack)
                        raise
                    successor.node.prev_page = right_frame.page_id
                    self._pool.unpin(successor, dirty=True)
                node.next_page = right_frame.page_id
                sep_key = moved[0][0]
            else:
                moved = node.take_upper_half()
                right_frame = self._pool.new_page(
                    self._file,
                    lambda pid: InternalNode(pid, node.level, moved),  # noqa: B023
                )
                sep_key = moved[0][0]
            self._pool.mark_dirty(frame)

            if stack:
                parent_frame = stack.pop()
                parent = parent_frame.node
                slot = parent.child_slot(node.page_id)
                parent.entries.insert(slot + 1, (sep_key, right_frame.page_id))
                self._pool.mark_dirty(parent_frame)
                self._pool.unpin(right_frame)
                self._pool.unpin(frame)
                frame = parent_frame
            else:
                try:
                    root_frame = self._pool.new_page(
                        self._file,
                        lambda pid: InternalNode(
                            pid,
                            node.level + 1,
                            [
                                (NEG_INF, node.page_id),  # noqa: B023
                                (sep_key, right_frame.page_id),  # noqa: B023
                            ],
                        ),
                    )
                except BaseException:
                    self._pool.unpin(right_frame)
                    self._pool.unpin(frame)
                    raise
                self._root_id = root_frame.page_id
                self._pool.unpin(root_frame)
                self._pool.unpin(right_frame)
                self._pool.unpin(frame)
                return
        self._pool.unpin(frame)
        self._unpin_all(stack)

    # -- deletion machinery ------------------------------------------------

    def _unlink_leaf(self, leaf: LeafNode) -> None:
        """Splice an empty leaf out of the doubly-linked sibling chain."""
        if leaf.prev_page != NO_PAGE:
            prev_frame = self._fetch(leaf.prev_page)
            prev_frame.node.next_page = leaf.next_page
            self._pool.unpin(prev_frame, dirty=True)
        if leaf.next_page != NO_PAGE:
            next_frame = self._fetch(leaf.next_page)
            next_frame.node.prev_page = leaf.prev_page
            self._pool.unpin(next_frame, dirty=True)

    def _remove_from_ancestors(self, dead_id: int, stack: List[Frame]) -> None:
        """Drop ``dead_id`` from its parent, cascading through empties.

        Every frame on ``stack`` is pinned and gets released here; the dead
        page (already unpinned) is freed after its parent stops routing to
        it, so a concurrent-looking read can never follow a stale pointer
        into a freed page.
        """
        while stack:
            parent_frame = stack.pop()
            parent = parent_frame.node
            slot = parent.child_slot(dead_id)
            parent.remove_child(dead_id)
            self._pool.mark_dirty(parent_frame)
            self._pool.free_page(self._file, dead_id)
            if parent.entries or not stack:
                new_first = (
                    parent.entries[0][1] if slot == 0 and parent.entries else NO_PAGE
                )
                self._pool.unpin(parent_frame)
                self._unpin_all(stack)
                if new_first != NO_PAGE:
                    self._fix_leftmost_spine(new_first)
                return
            dead_id = parent.page_id
            self._pool.unpin(parent_frame)

    def _collapse_root(self) -> None:
        """An internal root with a single child hands the tree to it."""
        while True:
            node = self._pool.read_node(self._file, self._root_id)
            if isinstance(node, InternalNode) and len(node.entries) == 1:
                old_root = self._root_id
                self._root_id = node.entries[0][1]
                self._pool.free_page(self._file, old_root)
                continue
            break
        self._fix_leftmost_spine(self._root_id)

    def _fix_leftmost_spine(self, page_id: int) -> None:
        """Restore the leftmost-spine invariant below ``page_id``.

        Internal nodes on the leftmost spine must carry the ``NEG_INF``
        separator in slot 0 (descent routes keys below the first real
        separator into the first child). A node that *becomes* leftmost —
        promoted to root, or made the first child after its left sibling was
        unlinked — may still carry the real slot-0 separator it got when
        split off; without this rewrite, keys below that separator route
        into its first subtree and later splits emit out-of-order parent
        separators. Stops once it finds ``NEG_INF``: by induction everything
        below is already leftmost-clean.
        """
        while True:
            frame = self._fetch(page_id)
            node = frame.node
            if isinstance(node, LeafNode):
                self._pool.unpin(frame)
                return
            sep, first_child = node.entries[0]
            if sep == NEG_INF:
                self._pool.unpin(frame)
                return
            node.entries[0] = (NEG_INF, first_child)
            self._pool.unpin(frame, dirty=True)
            page_id = first_child

    # -- bulk load ---------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[int, bytes]]) -> int:
        """Build the tree bottom-up from sorted ``(key, payload)`` pairs.

        Pages are written straight to the file at ~90% fill (the pool is
        bypassed, as in a real engine's sorted index build), so loading a
        million rows costs one serialize+write per page instead of a
        root-to-leaf descent per row. The tree must be empty. Returns the
        number of rows loaded.
        """
        if self._size:
            raise StorageError("bulk_load requires an empty tree")
        chunks: List[List[Tuple[int, bytes]]] = []
        current: List[Tuple[int, bytes]] = []
        used = 0
        last_key: Optional[int] = None
        for key, payload in items:
            if last_key is not None and key <= last_key:
                raise StorageError(
                    f"bulk_load keys must be strictly increasing "
                    f"({key} after {last_key})"
                )
            last_key = key
            need = LEAF_ENTRY_OVERHEAD + len(payload)
            if current and used + need > BULK_FILL_BYTES:
                chunks.append(current)
                current = []
                used = 0
            current.append((key, payload))
            used += need
        if current:
            chunks.append(current)
        if not chunks:
            return 0

        old_root = self._root_id
        leaf_ids = [self._file.allocate() for _ in chunks]
        total = 0
        for idx, (page_id, chunk) in enumerate(zip(leaf_ids, chunks)):
            total += len(chunk)
            leaf = LeafNode(
                page_id,
                chunk,
                prev_page=leaf_ids[idx - 1] if idx > 0 else NO_PAGE,
                next_page=leaf_ids[idx + 1] if idx + 1 < len(leaf_ids) else NO_PAGE,
            )
            self._file.write_page(page_id, leaf.serialize())

        per_node = BULK_FILL_BYTES // INTERNAL_ENTRY_SIZE
        children = [
            (chunk[0][0], page_id) for page_id, chunk in zip(leaf_ids, chunks)
        ]
        level = 1
        while len(children) > 1:
            children[0] = (NEG_INF, children[0][1])
            groups = [
                children[i:i + per_node]
                for i in range(0, len(children), per_node)
            ]
            group_ids = [self._file.allocate() for _ in groups]
            for page_id, group in zip(group_ids, groups):
                self._file.write_page(
                    page_id, InternalNode(page_id, level, group).serialize()
                )
            children = [
                (group[0][0], page_id)
                for page_id, group in zip(group_ids, groups)
            ]
            level += 1

        self._root_id = children[0][1]
        self._size = total
        self._pool.free_page(self._file, old_root)
        self._meta_changed()
        return total

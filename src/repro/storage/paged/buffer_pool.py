"""Frame-based buffer pool: every paged B+-tree I/O goes through here.

Unlike the seed's :class:`repro.storage.buffer_pool.BufferPool` — a recency
ledger that merely *records* which pages a tree touched — this pool owns a
fixed budget of frames holding the decoded page objects themselves. A page
read that misses goes to the :class:`~.page_file.PageFile`; a miss with no
free frame evicts a victim (write-back if dirty); a pinned frame can never
be evicted. Pages mutate in place in their frame and reach disk only on
eviction, explicit flush, or checkpoint.

Two eviction policies:

* ``lru`` — strict least-recently-used (an :class:`~collections.OrderedDict`
  over frame keys);
* ``clock`` — second-chance: a hand sweeps the frame ring clearing
  reference bits, evicting the first unpinned frame whose bit is clear.

Both policies maintain the same recency ledger, so the ``ib_buffer_pool``
dump (:meth:`BufferPoolManager.dump`) has identical semantics regardless of
policy — the dump reuses the seed's :class:`~repro.storage.buffer_pool.PageRef`
format, which keeps the §3 access-path forensics parser unchanged while the
pages it describes become *actual resident frames*.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ...errors import BufferPoolError
from ..buffer_pool import BufferPoolDump, PageRef
from .node import Node, decode_node
from .page_file import PageFile


class EvictionPolicy(str, enum.Enum):
    """Victim-selection strategy for a full pool."""

    LRU = "lru"
    CLOCK = "clock"


class Frame:
    """One buffer-pool slot: a decoded page plus its bookkeeping."""

    __slots__ = (
        "slot",
        "file",
        "page_id",
        "node",
        "pin_count",
        "dirty",
        "rec_lsn",
        "page_lsn",
        "access_count",
        "ref_bit",
    )

    def __init__(self, slot: int, file: PageFile, node: Node) -> None:
        self.slot = slot
        self.file = file
        self.page_id = node.page_id
        self.node = node
        self.pin_count = 0
        self.dirty = False
        #: LSN that first dirtied the page since its last write-back —
        #: the dirty-page-table entry (where redo must reach back to).
        #: 0 while clean.
        self.rec_lsn = 0
        #: LSN at the page's *latest* dirtying — the WAL rule's flush
        #: target: the log must be durable up to here before the page may
        #: reach disk, and write-back stamps it into the page header.
        self.page_lsn = 0
        self.access_count = 0
        self.ref_bit = True

    @property
    def key(self) -> Tuple[int, int]:
        return (self.file.space_id, self.page_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Frame(slot={self.slot}, space={self.file.space_id}, "
            f"page={self.page_id}, pins={self.pin_count}, "
            f"dirty={self.dirty})"
        )


class BufferPoolManager:
    """Fixed-frame page cache shared by every tablespace of one engine.

    Parameters
    ----------
    capacity:
        Frame budget. Tests use tiny budgets (e.g. 8) to force eviction.
    policy:
        ``"lru"`` or ``"clock"`` (or an :class:`EvictionPolicy`).
    lsn_source:
        Zero-argument callable returning the engine LSN; stamped into each
        page header at write-back so on-disk images order deterministically.
    log_flusher:
        WAL-rule hook: called with a dirty frame's page-LSN (its latest
        dirtying LSN) *before* that frame is written back, so the log
        covering the page's changes is durable before the page is
        (``LogManager.flush_to``). ``None`` disables the rule (standalone
        pools in tests).
    """

    DEFAULT_CAPACITY = 8192

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        policy: str = "lru",
        lsn_source: Optional[Callable[[], int]] = None,
        log_flusher: Optional[Callable[[int], None]] = None,
        instrumentation=None,
    ) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        try:
            self.policy = EvictionPolicy(policy)
        except ValueError:
            raise BufferPoolError(
                f"unknown eviction policy {policy!r} (expected 'lru' or 'clock')"
            ) from None
        self._lsn_source = lsn_source
        self._log_flusher = log_flusher
        if instrumentation is None:
            from ...obs.instrumentation import NO_OP_INSTRUMENTATION

            instrumentation = NO_OP_INSTRUMENTATION
        self._obs = instrumentation

        self._frames: List[Optional[Frame]] = [None] * capacity
        self._free_slots: List[int] = list(range(capacity - 1, -1, -1))
        self._page_table: Dict[Tuple[int, int], int] = {}
        # key -> None; insertion order tracks recency (last = MRU). Kept for
        # both policies so the dump artifact is policy-independent.
        self._recency: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self._clock_hand = 0
        self._files: Dict[int, PageFile] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._writebacks = 0

    # -- fetch / pin discipline -------------------------------------------

    def fetch(self, file: PageFile, page_id: int) -> Frame:
        """Pin the page into a frame, reading it from disk on a miss.

        The caller owns one pin on the returned frame and must
        :meth:`unpin` it (``dirty=True`` if the node was mutated).
        """
        key = (file.space_id, page_id)
        slot = self._page_table.get(key)
        if slot is not None:
            frame = self._frames[slot]
            self._hits += 1
            self._obs.count("buffer_pool.hits")
            self._touch(frame)
            frame.pin_count += 1
            return frame
        self._misses += 1
        self._obs.count("buffer_pool.misses")
        node = decode_node(file.read_page(page_id))
        frame = self._install(file, node)
        frame.pin_count = 1
        return frame

    def new_page(
        self, file: PageFile, node_factory: Callable[[int], Node]
    ) -> Frame:
        """Allocate a fresh page in ``file`` and pin its (dirty) frame.

        ``node_factory`` receives the allocated page id and must return the
        decoded node to install. The frame starts dirty — the blank
        placeholder the file wrote at allocation is not the real content.
        """
        page_id = file.allocate()
        node = node_factory(page_id)
        if node.page_id != page_id:
            raise BufferPoolError(
                f"node_factory built page {node.page_id}, expected {page_id}"
            )
        frame = self._install(file, node)
        frame.pin_count = 1
        self._note_dirty(frame)
        return frame

    def unpin(self, frame: Frame, dirty: bool = False) -> None:
        if frame.pin_count <= 0:
            raise BufferPoolError(
                f"unpin of unpinned frame for page {frame.page_id}"
            )
        frame.pin_count -= 1
        if dirty:
            self._note_dirty(frame)

    def mark_dirty(self, frame: Frame) -> None:
        self._note_dirty(frame)

    def _note_dirty(self, frame: Frame) -> None:
        """Dirty a frame: rec-LSN sticks to the clean→dirty edge, page-LSN
        advances with every re-dirtying."""
        lsn = self._lsn_source() if self._lsn_source is not None else 0
        if not frame.dirty:
            frame.dirty = True
            frame.rec_lsn = lsn
        frame.page_lsn = lsn

    def free_page(self, file: PageFile, page_id: int) -> None:
        """Discard a (possibly resident) page and put it on the free list.

        The frame is dropped *without* write-back: the on-disk slot keeps
        whatever image was last flushed there, so deleted rows persist as
        free-page residue (the secure-deletion gap the ``page_free_list``
        artifact exposes) instead of being scrubbed by a final flush of
        the emptied node.
        """
        key = (file.space_id, page_id)
        slot = self._page_table.get(key)
        if slot is not None:
            frame = self._frames[slot]
            if frame.pin_count > 0:
                raise BufferPoolError(
                    f"cannot free pinned page {page_id} "
                    f"(pin count {frame.pin_count})"
                )
            self._drop(frame)
        file.free(page_id)

    # -- internal frame management ----------------------------------------

    def _install(self, file: PageFile, node: Node) -> Frame:
        self._files.setdefault(file.space_id, file)
        if not self._free_slots:
            self._evict_slot()  # drops the victim, freeing its slot
        slot = self._free_slots.pop()
        frame = Frame(slot, file, node)
        frame.access_count = 1
        self._frames[slot] = frame
        self._page_table[frame.key] = slot
        self._recency[frame.key] = None
        return frame

    def _touch(self, frame: Frame) -> None:
        frame.access_count += 1
        frame.ref_bit = True
        self._recency.move_to_end(frame.key)

    def _evict_slot(self) -> None:
        if self.policy is EvictionPolicy.LRU:
            victim = self._lru_victim()
        else:
            victim = self._clock_victim()
        if victim.dirty:
            self._writeback(victim)
        self._evictions += 1
        self._obs.count("buffer_pool.evictions")
        self._drop(victim)

    def _lru_victim(self) -> Frame:
        for key in self._recency:
            frame = self._frames[self._page_table[key]]
            if frame.pin_count == 0:
                return frame
        raise BufferPoolError(
            f"all {self.capacity} frames are pinned; cannot evict"
        )

    def _clock_victim(self) -> Frame:
        # Two full sweeps: the first may only clear reference bits.
        for _ in range(2 * self.capacity):
            frame = self._frames[self._clock_hand]
            self._clock_hand = (self._clock_hand + 1) % self.capacity
            if frame is None or frame.pin_count > 0:
                continue
            if frame.ref_bit:
                frame.ref_bit = False
                continue
            return frame
        raise BufferPoolError(
            f"all {self.capacity} frames are pinned; cannot evict"
        )

    def _drop(self, frame: Frame) -> None:
        self._frames[frame.slot] = None
        self._free_slots.append(frame.slot)
        del self._page_table[frame.key]
        self._recency.pop(frame.key, None)

    def _writeback(self, frame: Frame) -> None:
        # WAL rule: the log must be durable up to the page's own LSN before
        # its image may reach disk. Flushing to the frame's page-LSN (not
        # the engine's end LSN) lets a write-back skip the flush entirely
        # when the log already covers the page's changes.
        if self._log_flusher is not None:
            self._log_flusher(frame.page_lsn)
        frame.file.write_page(
            frame.page_id, frame.node.serialize(page_lsn=frame.page_lsn)
        )
        frame.dirty = False
        frame.rec_lsn = 0
        self._writebacks += 1
        self._obs.count("buffer_pool.writebacks")

    # -- flushing / checkpoint --------------------------------------------

    def flush_page(self, file: PageFile, page_id: int) -> bool:
        """Write back one resident dirty page; returns whether it wrote."""
        slot = self._page_table.get((file.space_id, page_id))
        if slot is None:
            return False
        frame = self._frames[slot]
        if not frame.dirty:
            return False
        self._writeback(frame)
        return True

    def flush_all(self) -> int:
        """Write back every dirty frame (pinned ones included); count them."""
        flushed = 0
        for slot in self._page_table.values():
            frame = self._frames[slot]
            if frame.dirty:
                self._writeback(frame)
                flushed += 1
        return flushed

    def checkpoint(self) -> int:
        """Flush all dirty frames, then stamp + flush every file header.

        Returns the checkpoint LSN written into the tablespace headers —
        after this call the on-disk files are self-consistent up to it.
        The LSN always comes from the engine's WAL clock (``lsn_source``);
        the old ad-hoc ``lsn`` override is gone.
        """
        lsn = self._lsn_source() if self._lsn_source is not None else 0
        self.flush_all()
        for file in self._files.values():
            file.checkpoint_lsn = lsn
            file.flush_header()
            file.flush()
        return lsn

    # -- non-caching reads (maintenance scans) ----------------------------

    def read_node(self, file: PageFile, page_id: int) -> Node:
        """Read a page *without* touching stats, recency, or frames.

        Resident pages are served from their frame (they may be dirty and
        newer than disk); absent pages are decoded straight from the file
        and not cached. This is the ``engine.scan()`` path — maintenance
        reads must not perturb the leakage-bearing recency order.
        """
        slot = self._page_table.get((file.space_id, page_id))
        if slot is not None:
            return self._frames[slot].node
        return decode_node(file.read_page(page_id))

    # -- introspection / artifacts ----------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._page_table)

    @property
    def pinned_frames(self) -> int:
        return sum(
            1
            for slot in self._page_table.values()
            if self._frames[slot].pin_count > 0
        )

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "writebacks": self._writebacks,
            "resident": len(self._page_table),
            "pinned": self.pinned_frames,
        }

    def dirty_page_table(self) -> Tuple[Tuple[str, int, int], ...]:
        """The ARIES dirty-page table: ``(tablespace, page_id, rec_lsn)``
        per dirty resident frame, sorted for determinism. Carried by every
        checkpoint record so recovery knows how far back redo must reach."""
        entries = []
        for slot in self._page_table.values():
            frame = self._frames[slot]
            if frame.dirty:
                entries.append((frame.file.name, frame.page_id, frame.rec_lsn))
        return tuple(sorted(entries))

    def contains(self, space_id: int, page_id: int) -> bool:
        return (space_id, page_id) in self._page_table

    def access_count(self, space_id: int, page_id: int) -> int:
        slot = self._page_table.get((space_id, page_id))
        return self._frames[slot].access_count if slot is not None else 0

    def frames(self) -> List[Frame]:
        """Resident frames, MRU-first (test/forensics introspection)."""
        return [
            self._frames[self._page_table[key]]
            for key in reversed(self._recency)
        ]

    def lru_order(self) -> List[PageRef]:
        """Resident pages as dump refs, most-recently-used first."""
        return [
            PageRef(
                space_id=frame.file.space_id,
                page_id=frame.page_id,
                level=frame.node.level,
                access_count=frame.access_count,
            )
            for frame in self.frames()
        ]

    def dump(self) -> BufferPoolDump:
        """The ``ib_buffer_pool`` artifact, emitted from actual frames."""
        return BufferPoolDump(entries=tuple(self.lru_order()))

    def clear(self) -> None:
        """Flush dirty frames and drop everything (server restart)."""
        pinned = self.pinned_frames
        if pinned:
            raise BufferPoolError(
                f"cannot clear pool with {pinned} pinned frame(s)"
            )
        self.flush_all()
        self._frames = [None] * self.capacity
        self._free_slots = list(range(self.capacity - 1, -1, -1))
        self._page_table.clear()
        self._recency.clear()
        self._clock_hand = 0

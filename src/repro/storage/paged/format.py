"""On-disk page format: 4 KB pages with checksummed headers.

Every page in a :class:`~repro.storage.paged.page_file.PageFile` is exactly
:data:`PAGED_PAGE_SIZE` bytes. The fixed 32-byte header mirrors the InnoDB
``FIL_PAGE_*`` fields the paper's disk-theft forensics would parse:

====== ====== ==========================================================
offset  width  field
====== ====== ==========================================================
0       u32    checksum — CRC-32 of bytes ``[4:PAGE_SIZE]``
4       u32    page id within the tablespace
8       u16    page type (:class:`PagedPageType`)
10      u16    B+-tree level (0 for leaves)
12      u64    page LSN — engine LSN at the last write-back
20      u32    prev page id (leaf chain; 0 = none)
24      u32    next page id (leaf chain / free-list next; 0 = none)
28      u16    number of entries
30      u16    reserved
====== ====== ==========================================================

Page 0 is always the tablespace header (``FSP_HEADER``); its id doubles as
the null page pointer, which is why ``prev``/``next`` use 0 for "none".
Freed pages keep their old record payloads on disk (only the header is
rewritten) — byte residue the forensics layer can carve, exactly the
secure-deletion gap the paper's §3 artifacts exhibit.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from ...errors import PageError

#: The paged engine's page size (PostgreSQL-style 4 KB; InnoDB uses 16 KB).
PAGED_PAGE_SIZE = 4 * 1024

#: Fixed per-page header bytes (see the table in the module docstring).
PAGE_HEADER_SIZE = 32

#: Byte budget for entry payloads on one page.
PAGE_CAPACITY = PAGED_PAGE_SIZE - PAGE_HEADER_SIZE

#: Null page pointer (page 0 is always the tablespace header).
NO_PAGE = 0

_HEADER = struct.Struct("<IIHHQIIHH")
assert _HEADER.size == PAGE_HEADER_SIZE


class PagedPageType(enum.IntEnum):
    """On-disk page roles (subset of InnoDB's ``FIL_PAGE_TYPE``)."""

    FSP_HEADER = 0
    INDEX_INTERNAL = 1
    INDEX_LEAF = 2
    ALLOCATED = 3
    FREE = 4


@dataclass
class PageImage:
    """A decoded raw page: header fields plus the payload byte area."""

    page_id: int
    page_type: PagedPageType
    level: int
    page_lsn: int
    prev_page: int
    next_page: int
    n_entries: int
    payload: bytes


def checksum_of(raw: bytes) -> int:
    """The stored checksum covers everything after the checksum field."""
    return zlib.crc32(raw[4:]) & 0xFFFFFFFF


def pack_page(
    page_id: int,
    page_type: PagedPageType,
    level: int,
    page_lsn: int,
    prev_page: int,
    next_page: int,
    n_entries: int,
    payload: bytes,
) -> bytes:
    """Assemble one checksummed :data:`PAGED_PAGE_SIZE`-byte page image."""
    if len(payload) > PAGE_CAPACITY:
        raise PageError(
            f"page {page_id} payload of {len(payload)} bytes exceeds the "
            f"{PAGE_CAPACITY}-byte capacity"
        )
    body = _HEADER.pack(
        0,  # checksum placeholder
        page_id,
        int(page_type),
        level,
        page_lsn,
        prev_page,
        next_page,
        n_entries,
        0,
    ) + payload
    raw = body + b"\x00" * (PAGED_PAGE_SIZE - len(body))
    return struct.pack("<I", checksum_of(raw)) + raw[4:]


def unpack_page(raw: bytes, expected_page_id: int = None) -> PageImage:
    """Parse and checksum-verify one raw page image."""
    if len(raw) != PAGED_PAGE_SIZE:
        raise PageError(
            f"page image must be {PAGED_PAGE_SIZE} bytes, got {len(raw)}"
        )
    (
        stored_checksum,
        page_id,
        type_value,
        level,
        page_lsn,
        prev_page,
        next_page,
        n_entries,
        _reserved,
    ) = _HEADER.unpack_from(raw)
    actual = checksum_of(raw)
    if stored_checksum != actual:
        raise PageError(
            f"page {page_id} checksum mismatch: header says "
            f"{stored_checksum:#010x}, page bytes hash to {actual:#010x}"
        )
    if expected_page_id is not None and page_id != expected_page_id:
        raise PageError(
            f"page header claims id {page_id} but was read from slot "
            f"{expected_page_id}"
        )
    try:
        page_type = PagedPageType(type_value)
    except ValueError:
        raise PageError(f"unknown page type {type_value}") from None
    return PageImage(
        page_id=page_id,
        page_type=page_type,
        level=level,
        page_lsn=page_lsn,
        prev_page=prev_page,
        next_page=next_page,
        n_entries=n_entries,
        payload=raw[PAGE_HEADER_SIZE:],
    )

"""Decoded B+-tree node representations for 4 KB pages.

Frames in the paged buffer pool hold these decoded nodes; serialization to
the raw page image happens on write-back only (and decoding on fetch), so
the hot path never re-parses a resident page.

Entry encodings inside the page payload area:

* leaf entry — ``i64 key (LE) + u32 payload_len + payload`` (12-byte
  fixed overhead per entry);
* internal entry — ``i64 separator (LE) + u32 child_page_id`` (12 bytes).

Both node kinds track their serialized byte usage incrementally so split
decisions are made against the real 4 KB budget, not an entry count.
"""

from __future__ import annotations

import struct
from typing import List, Tuple, Union

from ...errors import PageError, StorageError
from .format import (
    NO_PAGE,
    PAGE_CAPACITY,
    PageImage,
    PagedPageType,
    pack_page,
)

#: Fixed serialized overhead of one leaf entry (key + length prefix).
LEAF_ENTRY_OVERHEAD = 12

#: Fixed serialized size of one internal entry.
INTERNAL_ENTRY_SIZE = 12

#: Separator for the leftmost child of an internal node (smaller than any
#: encodable key; mirrors :data:`repro.storage.btree._NEG_INF`).
NEG_INF = -(1 << 63)

_LEAF_ENTRY = struct.Struct("<qI")
_INTERNAL_ENTRY = struct.Struct("<qI")

#: Largest row payload that fits a leaf page.
MAX_LEAF_PAYLOAD = PAGE_CAPACITY - LEAF_ENTRY_OVERHEAD


class LeafNode:
    """A decoded leaf page: sorted ``(key, payload)`` rows plus the chain."""

    __slots__ = ("page_id", "entries", "prev_page", "next_page", "_used")

    level = 0
    page_type = PagedPageType.INDEX_LEAF

    def __init__(
        self,
        page_id: int,
        entries: List[Tuple[int, bytes]] = None,
        prev_page: int = NO_PAGE,
        next_page: int = NO_PAGE,
    ) -> None:
        self.page_id = page_id
        self.entries: List[Tuple[int, bytes]] = entries if entries is not None else []
        self.prev_page = prev_page
        self.next_page = next_page
        self._used = sum(
            LEAF_ENTRY_OVERHEAD + len(p) for _, p in self.entries
        )

    # -- capacity ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def overflowing(self) -> bool:
        return self._used > PAGE_CAPACITY

    def insert_entry(self, slot: int, key: int, payload: bytes) -> None:
        if len(payload) > MAX_LEAF_PAYLOAD:
            raise StorageError(
                f"row of {len(payload)} bytes cannot fit a "
                f"{PAGE_CAPACITY}-byte page"
            )
        self.entries.insert(slot, (key, payload))
        self._used += LEAF_ENTRY_OVERHEAD + len(payload)

    def replace_entry(self, slot: int, key: int, payload: bytes) -> bytes:
        if len(payload) > MAX_LEAF_PAYLOAD:
            raise StorageError(
                f"row of {len(payload)} bytes cannot fit a "
                f"{PAGE_CAPACITY}-byte page"
            )
        _, old = self.entries[slot]
        self.entries[slot] = (key, payload)
        self._used += len(payload) - len(old)
        return old

    def pop_entry(self, slot: int) -> Tuple[int, bytes]:
        key, payload = self.entries.pop(slot)
        self._used -= LEAF_ENTRY_OVERHEAD + len(payload)
        return key, payload

    def take_upper_half(self) -> List[Tuple[int, bytes]]:
        """Remove and return the upper half of the entries (split support)."""
        mid = len(self.entries) // 2
        moved = self.entries[mid:]
        del self.entries[mid:]
        self._used -= sum(LEAF_ENTRY_OVERHEAD + len(p) for _, p in moved)
        return moved

    # -- serialization -----------------------------------------------------

    def serialize(self, page_lsn: int = 0) -> bytes:
        parts = []
        for key, payload in self.entries:
            parts.append(_LEAF_ENTRY.pack(key, len(payload)))
            parts.append(payload)
        return pack_page(
            self.page_id,
            PagedPageType.INDEX_LEAF,
            0,
            page_lsn,
            self.prev_page,
            self.next_page,
            len(self.entries),
            b"".join(parts),
        )

    @classmethod
    def decode(cls, image: PageImage) -> "LeafNode":
        if image.page_type is not PagedPageType.INDEX_LEAF:
            raise PageError(
                f"page {image.page_id} is {image.page_type.name}, not a leaf"
            )
        entries: List[Tuple[int, bytes]] = []
        payload = image.payload
        offset = 0
        for _ in range(image.n_entries):
            try:
                key, length = _LEAF_ENTRY.unpack_from(payload, offset)
            except struct.error:
                raise PageError(
                    f"truncated leaf entry on page {image.page_id}"
                ) from None
            offset += LEAF_ENTRY_OVERHEAD
            if offset + length > len(payload):
                raise PageError(
                    f"leaf entry on page {image.page_id} overruns the page"
                )
            entries.append((key, bytes(payload[offset:offset + length])))
            offset += length
        return cls(
            image.page_id,
            entries,
            prev_page=image.prev_page,
            next_page=image.next_page,
        )


class InternalNode:
    """A decoded internal page: sorted ``(separator, child_page_id)`` rows."""

    __slots__ = ("page_id", "level", "entries")

    page_type = PagedPageType.INDEX_INTERNAL

    def __init__(
        self,
        page_id: int,
        level: int,
        entries: List[Tuple[int, int]] = None,
    ) -> None:
        self.page_id = page_id
        self.level = level
        self.entries: List[Tuple[int, int]] = entries if entries is not None else []

    @property
    def used_bytes(self) -> int:
        return len(self.entries) * INTERNAL_ENTRY_SIZE

    @property
    def overflowing(self) -> bool:
        return self.used_bytes > PAGE_CAPACITY

    def take_upper_half(self) -> List[Tuple[int, int]]:
        mid = len(self.entries) // 2
        moved = self.entries[mid:]
        del self.entries[mid:]
        return moved

    def route(self, key: int) -> int:
        """The child page that covers ``key`` (last separator ``<= key``)."""
        entries = self.entries
        child = entries[0][1]
        for sep, candidate in entries:
            if key >= sep:
                child = candidate
            else:
                break
        return child

    def child_slot(self, child_page_id: int) -> int:
        for slot, (_, child) in enumerate(self.entries):
            if child == child_page_id:
                return slot
        raise StorageError(
            f"internal page {self.page_id} has no entry for child "
            f"{child_page_id}"
        )

    def remove_child(self, child_page_id: int) -> None:
        """Drop the entry routing to ``child_page_id`` (empty-node unlink).

        When the removed entry was the leftmost, the new first entry takes
        over the ``NEG_INF`` separator so the node still covers the full
        key range of its subtree.
        """
        slot = self.child_slot(child_page_id)
        del self.entries[slot]
        if slot == 0 and self.entries:
            self.entries[0] = (NEG_INF, self.entries[0][1])

    # -- serialization -----------------------------------------------------

    def serialize(self, page_lsn: int = 0) -> bytes:
        payload = b"".join(
            _INTERNAL_ENTRY.pack(sep, child) for sep, child in self.entries
        )
        return pack_page(
            self.page_id,
            PagedPageType.INDEX_INTERNAL,
            self.level,
            page_lsn,
            NO_PAGE,
            NO_PAGE,
            len(self.entries),
            payload,
        )

    @classmethod
    def decode(cls, image: PageImage) -> "InternalNode":
        if image.page_type is not PagedPageType.INDEX_INTERNAL:
            raise PageError(
                f"page {image.page_id} is {image.page_type.name}, "
                "not an internal node"
            )
        entries: List[Tuple[int, int]] = []
        offset = 0
        for _ in range(image.n_entries):
            try:
                sep, child = _INTERNAL_ENTRY.unpack_from(image.payload, offset)
            except struct.error:
                raise PageError(
                    f"truncated internal entry on page {image.page_id}"
                ) from None
            entries.append((sep, child))
            offset += INTERNAL_ENTRY_SIZE
        return cls(image.page_id, image.level, entries)


Node = Union[LeafNode, InternalNode]


def decode_node(image: PageImage) -> Node:
    """Decode a tree page image into the matching node class."""
    if image.page_type is PagedPageType.INDEX_LEAF:
        return LeafNode.decode(image)
    if image.page_type is PagedPageType.INDEX_INTERNAL:
        return InternalNode.decode(image)
    raise PageError(
        f"page {image.page_id} ({image.page_type.name}) is not a B+-tree page"
    )

"""Single-file tablespace: one ``.ibd``-style file of 4 KB pages.

Page 0 is the tablespace header (``FSP_HEADER``), holding the metadata a
real engine would keep in its system pages::

    magic            8 bytes   b"REPROPGD"
    version          u16       format version (1)
    space_id         u32       tablespace id
    page_size        u32       PAGED_PAGE_SIZE (sanity check on open)
    num_pages        u32       total pages in the file, header included
    free_head        u32       head of the freed-page chain (0 = empty)
    free_count       u32       pages on the freed chain
    checkpoint_lsn   u64       LSN stamped by the last checkpoint
    clustered_root   u32       root page of the clustered index (0 = none)
    clustered_size   u64       live row count of the clustered index
    name             str       table name (length-prefixed UTF-8)
    n_secondary      u16       secondary index directory entries, each:
        name         str       index name
        root         u32       index root page (0 = empty)
        size         u64       posting count

Freed pages are threaded through their header ``next_page`` field with the
page type rewritten to ``FREE`` — but the record payload is left on disk
untouched. That residue is deliberate: it is the secure-deletion gap the
paper's snapshot attacker exploits, and the ``page_free_list`` /
``tablespace_file`` artifacts expose it.
"""

from __future__ import annotations

import io
import os
import struct
from typing import BinaryIO, Dict, List, Optional, Tuple

from ...errors import PageError, StorageError
from ...util.serialization import decode_str, encode_str
from .format import (
    NO_PAGE,
    PAGED_PAGE_SIZE,
    PagedPageType,
    PageImage,
    checksum_of,
    pack_page,
    unpack_page,
)

_MAGIC = b"REPROPGD"
_FORMAT_VERSION = 1
_FIXED_HEADER = struct.Struct("<8sHIIIIIQIQ")
_SECONDARY_ENTRY = struct.Struct("<IQ")


class PageFile:
    """A single-file tablespace of checksummed 4 KB pages.

    All I/O is page-granular. The header page is cached in memory and
    rewritten lazily (``flush_header``); data pages are read and written
    directly — caching them is the buffer pool's job, not the file's.
    """

    def __init__(
        self,
        path: Optional[str],
        name: str,
        space_id: int = 0,
        file_obj: Optional[BinaryIO] = None,
    ) -> None:
        self.path = path
        self.name = name
        self.space_id = space_id
        if file_obj is not None:
            self._file: BinaryIO = file_obj
        elif path is None:
            self._file = io.BytesIO()
        else:
            # "w+b" would clobber an existing tablespace; open for update.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)  # noqa: SIM115
        self._closed = False

        self.num_pages = 1
        self.free_head = NO_PAGE
        self.free_count = 0
        self.checkpoint_lsn = 0
        self.clustered_root = NO_PAGE
        self.clustered_size = 0
        self.secondary_roots: Dict[str, Tuple[int, int]] = {}
        self._header_dirty = True

        self._file.seek(0, os.SEEK_END)
        if self._file.tell() >= PAGED_PAGE_SIZE:
            self._load_header()
        else:
            self.flush_header()

    # -- header page -------------------------------------------------------

    def _header_payload(self) -> bytes:
        parts = [
            _FIXED_HEADER.pack(
                _MAGIC,
                _FORMAT_VERSION,
                self.space_id,
                PAGED_PAGE_SIZE,
                self.num_pages,
                self.free_head,
                self.free_count,
                self.checkpoint_lsn,
                self.clustered_root,
                self.clustered_size,
            ),
            encode_str(self.name),
            struct.pack("<H", len(self.secondary_roots)),
        ]
        for index_name, (root, size) in self.secondary_roots.items():
            parts.append(encode_str(index_name))
            parts.append(_SECONDARY_ENTRY.pack(root, size))
        return b"".join(parts)

    def flush_header(self) -> None:
        """Rewrite page 0 from the in-memory header fields."""
        raw = pack_page(
            0,
            PagedPageType.FSP_HEADER,
            0,
            self.checkpoint_lsn,
            NO_PAGE,
            NO_PAGE,
            len(self.secondary_roots),
            self._header_payload(),
        )
        self._write_raw(0, raw)
        self._header_dirty = False

    def _load_header(self) -> None:
        image = self._read_raw(0)
        if image.page_type is not PagedPageType.FSP_HEADER:
            raise PageError(
                f"tablespace {self.name!r}: page 0 is {image.page_type.name}, "
                "not FSP_HEADER"
            )
        (
            magic,
            version,
            space_id,
            page_size,
            num_pages,
            free_head,
            free_count,
            checkpoint_lsn,
            clustered_root,
            clustered_size,
        ) = _FIXED_HEADER.unpack_from(image.payload)
        if magic != _MAGIC:
            raise PageError(
                f"tablespace {self.name!r}: bad magic {magic!r}"
            )
        if version != _FORMAT_VERSION:
            raise PageError(
                f"tablespace {self.name!r}: unsupported format "
                f"version {version}"
            )
        if page_size != PAGED_PAGE_SIZE:
            raise PageError(
                f"tablespace {self.name!r}: page size {page_size} does not "
                f"match the build's {PAGED_PAGE_SIZE}"
            )
        offset = _FIXED_HEADER.size
        stored_name, offset = decode_str(image.payload, offset)
        (n_secondary,) = struct.unpack_from("<H", image.payload, offset)
        offset += 2
        secondary: Dict[str, Tuple[int, int]] = {}
        for _ in range(n_secondary):
            index_name, offset = decode_str(image.payload, offset)
            root, size = _SECONDARY_ENTRY.unpack_from(image.payload, offset)
            offset += _SECONDARY_ENTRY.size
            secondary[index_name] = (root, size)

        self.name = stored_name
        self.space_id = space_id
        self.num_pages = num_pages
        self.free_head = free_head
        self.free_count = free_count
        self.checkpoint_lsn = checkpoint_lsn
        self.clustered_root = clustered_root
        self.clustered_size = clustered_size
        self.secondary_roots = secondary
        self._header_dirty = False

    def mark_header_dirty(self) -> None:
        self._header_dirty = True

    @property
    def header_dirty(self) -> bool:
        return self._header_dirty

    # -- raw page I/O ------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"tablespace {self.name!r} is closed")

    def _write_raw(self, page_id: int, raw: bytes) -> None:
        self._check_open()
        self._file.seek(page_id * PAGED_PAGE_SIZE)
        self._file.write(raw)

    def _read_raw(self, page_id: int) -> PageImage:
        self._check_open()
        self._file.seek(page_id * PAGED_PAGE_SIZE)
        raw = self._file.read(PAGED_PAGE_SIZE)
        return unpack_page(raw, expected_page_id=page_id)

    def read_page(self, page_id: int) -> PageImage:
        """Read and checksum-verify one data page."""
        if not 0 < page_id < self.num_pages:
            raise PageError(
                f"tablespace {self.name!r}: page {page_id} out of range "
                f"(file has {self.num_pages} pages)"
            )
        return self._read_raw(page_id)

    def write_page(self, page_id: int, raw: bytes) -> None:
        """Write one pre-packed page image at its slot."""
        if len(raw) != PAGED_PAGE_SIZE:
            raise PageError(
                f"page image must be {PAGED_PAGE_SIZE} bytes, got {len(raw)}"
            )
        if not 0 < page_id < self.num_pages:
            raise PageError(
                f"tablespace {self.name!r}: page {page_id} out of range "
                f"(file has {self.num_pages} pages)"
            )
        self._write_raw(page_id, raw)

    # -- allocation --------------------------------------------------------

    def allocate(self) -> int:
        """Return a usable page id: pop the free list, else grow the file.

        The slot is stamped with a blank ``ALLOCATED`` page so a read
        before the owner's first write-back still checksum-verifies.
        """
        self._check_open()
        if self.free_head != NO_PAGE:
            page_id = self.free_head
            freed = self._read_raw(page_id)
            if freed.page_type is not PagedPageType.FREE:
                raise PageError(
                    f"tablespace {self.name!r}: free-list head {page_id} is "
                    f"{freed.page_type.name}, not FREE"
                )
            self.free_head = freed.next_page
            self.free_count -= 1
        else:
            page_id = self.num_pages
            self.num_pages += 1
        self._write_raw(
            page_id,
            pack_page(page_id, PagedPageType.ALLOCATED, 0, 0, NO_PAGE, NO_PAGE, 0, b""),
        )
        self._header_dirty = True
        return page_id

    def free(self, page_id: int) -> None:
        """Thread a page onto the free list, *keeping its payload bytes*.

        Only the 32-byte header is rewritten (type ``FREE``, ``next`` =
        old free head); the record area stays on disk as residue for the
        snapshot attacker to carve.
        """
        current = self.read_page(page_id)
        if current.page_type is PagedPageType.FREE:
            raise PageError(
                f"tablespace {self.name!r}: page {page_id} is already free"
            )
        raw = pack_page(
            page_id,
            PagedPageType.FREE,
            0,
            current.page_lsn,
            NO_PAGE,
            self.free_head,
            0,
            current.payload.rstrip(b"\x00"),
        )
        self._write_raw(page_id, raw)
        self.free_head = page_id
        self.free_count += 1
        self._header_dirty = True

    def free_list(self) -> List[int]:
        """Walk the freed-page chain from the header, in chain order."""
        chain: List[int] = []
        page_id = self.free_head
        while page_id != NO_PAGE:
            chain.append(page_id)
            if len(chain) > self.num_pages:
                raise PageError(
                    f"tablespace {self.name!r}: free-list cycle detected"
                )
            page_id = self.read_page(page_id).next_page
        return chain

    # -- snapshot / compat surface ----------------------------------------

    @property
    def page_ids(self) -> List[int]:
        """All data-page ids (header excluded), in file order."""
        return list(range(1, self.num_pages))

    def to_bytes(self) -> bytes:
        """The raw tablespace file bytes — the disk-theft artifact.

        The header page is flushed first so the image is self-consistent.
        """
        self._check_open()
        if self._header_dirty:
            self.flush_header()
        self._file.seek(0)
        return self._file.read(self.num_pages * PAGED_PAGE_SIZE)

    def verify_all(self) -> int:
        """Checksum-verify every page; returns the page count checked."""
        for page_id in range(self.num_pages):
            self._read_raw(page_id)
        return self.num_pages

    def flush(self) -> None:
        """Flush header + OS buffers (page data is written synchronously)."""
        self._check_open()
        if self._header_dirty:
            self.flush_header()
        self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    def crash_close(self) -> None:
        """Drop the file as a killed process would: page writes that already
        reached the file survive, but the dirty in-memory header is *not*
        written back — the on-disk header stays at its last checkpoint
        (stale roots / page counts are exactly what recovery must face)."""
        if self._closed:
            return
        self._file.flush()
        self._file.close()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageFile(name={self.name!r}, space_id={self.space_id}, "
            f"pages={self.num_pages}, free={self.free_count})"
        )


__all__ = ["PageFile", "checksum_of"]

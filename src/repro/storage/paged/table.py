"""One paged table: a clustered index plus secondary indexes, one file.

Like an InnoDB ``.ibd`` tablespace, a single :class:`~.page_file.PageFile`
holds every index of the table: the clustered B+-tree (primary key →
row bytes) and any number of secondary B+-trees (extracted column value →
posting list of primary keys). Index roots and sizes persist in the file
header, so a reopened tablespace finds its trees again.

Secondary leaf payloads are posting lists — sorted 8-byte little-endian
signed primary keys concatenated — which is what makes per-value result
*volumes* directly readable off the page images (the channel the
volume-attack literature in PAPERS.md exploits).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ...errors import StorageError
from ..btree import AccessPath
from .btree import PagedBTree
from .buffer_pool import BufferPoolManager
from .format import NO_PAGE
from .page_file import PageFile

Extractor = Callable[[bytes], Optional[int]]
"""Pulls the indexed integer out of a raw row (None = not indexed)."""

_PK = struct.Struct("<q")


def _pack_postings(pks: List[int]) -> bytes:
    return b"".join(_PK.pack(pk) for pk in pks)


def _unpack_postings(payload: bytes) -> List[int]:
    if len(payload) % _PK.size:
        raise StorageError(
            f"posting list of {len(payload)} bytes is not a multiple "
            f"of {_PK.size}"
        )
    return [
        _PK.unpack_from(payload, offset)[0]
        for offset in range(0, len(payload), _PK.size)
    ]


@dataclass
class SecondaryIndexDef:
    """A registered secondary index: its name, extractor, and tree."""

    name: str
    extractor: Extractor
    tree: PagedBTree = field(repr=False, default=None)


class PagedTable:
    """Clustered rows plus secondary posting lists over one page file."""

    def __init__(self, pool: BufferPoolManager, file: PageFile) -> None:
        self._pool = pool
        self._file = file
        self.clustered = PagedBTree(
            pool,
            file,
            root_page_id=file.clustered_root,
            size=file.clustered_size,
            on_meta=self._clustered_meta,
        )
        self._secondary: Dict[str, SecondaryIndexDef] = {}

    # -- header persistence ------------------------------------------------

    def _clustered_meta(self, root: int, size: int) -> None:
        self._file.clustered_root = root
        self._file.clustered_size = size
        self._file.mark_header_dirty()

    def _secondary_meta(self, name: str) -> Callable[[int, int], None]:
        def on_meta(root: int, size: int) -> None:
            self._file.secondary_roots[name] = (root, size)
            self._file.mark_header_dirty()

        return on_meta

    # -- properties --------------------------------------------------------

    @property
    def file(self) -> PageFile:
        return self._file

    @property
    def name(self) -> str:
        return self._file.name

    @property
    def row_count(self) -> int:
        return self.clustered.size

    def secondary_indexes(self) -> List[str]:
        return list(self._secondary)

    # -- row operations ----------------------------------------------------

    def insert(self, pk: int, row: bytes) -> AccessPath:
        path = self.clustered.insert(pk, row)
        for index in self._secondary.values():
            value = index.extractor(row)
            if value is not None:
                self._posting_add(index.tree, value, pk)
        return path

    def update(self, pk: int, row: bytes) -> Tuple[bytes, AccessPath]:
        old_row, path = self.clustered.update(pk, row)
        for index in self._secondary.values():
            old_value = index.extractor(old_row)
            new_value = index.extractor(row)
            if old_value == new_value:
                continue
            if old_value is not None:
                self._posting_remove(index.tree, old_value, pk)
            if new_value is not None:
                self._posting_add(index.tree, new_value, pk)
        return old_row, path

    def delete(self, pk: int) -> Tuple[bytes, AccessPath]:
        old_row, path = self.clustered.delete(pk)
        for index in self._secondary.values():
            value = index.extractor(old_row)
            if value is not None:
                self._posting_remove(index.tree, value, pk)
        return old_row, path

    def get(self, pk: int) -> Tuple[Optional[bytes], AccessPath]:
        return self.clustered.get(pk)

    def range(
        self, low: Optional[int], high: Optional[int]
    ) -> Tuple[List[Tuple[int, bytes]], AccessPath]:
        return self.clustered.range(low, high)

    def scan(self) -> Iterator[Tuple[int, bytes]]:
        return self.clustered.scan()

    def bulk_load(self, items: Iterable[Tuple[int, bytes]]) -> int:
        """Sorted bottom-up build; secondary indexes are backfilled after."""
        loaded = self.clustered.bulk_load(items)
        for index in self._secondary.values():
            self._backfill(index)
        return loaded

    # -- secondary indexes -------------------------------------------------

    def create_secondary_index(self, name: str, extractor: Extractor) -> None:
        """Register a secondary index, backfilling from existing rows.

        If the tablespace header already knows this index (a reopened
        file), the existing tree is attached instead of rebuilt.
        """
        if name in self._secondary:
            raise StorageError(
                f"table {self.name!r} already has index {name!r}"
            )
        existing = self._file.secondary_roots.get(name)
        if existing is not None and existing[0] != NO_PAGE:
            root, size = existing
            tree = PagedBTree(
                self._pool,
                self._file,
                root_page_id=root,
                size=size,
                on_meta=self._secondary_meta(name),
            )
            self._secondary[name] = SecondaryIndexDef(name, extractor, tree)
            return
        tree = PagedBTree(
            self._pool, self._file, on_meta=self._secondary_meta(name)
        )
        index = SecondaryIndexDef(name, extractor, tree)
        self._secondary[name] = index
        self._backfill(index)

    def secondary_lookup(self, name: str, value: int) -> Tuple[List[int], AccessPath]:
        """Primary keys whose extracted value equals ``value``."""
        index = self._index(name)
        payload, path = index.tree.get(value)
        return ([] if payload is None else _unpack_postings(payload)), path

    def secondary_range(
        self, name: str, low: Optional[int], high: Optional[int]
    ) -> Tuple[List[Tuple[int, List[int]]], AccessPath]:
        """``(value, [pks])`` pairs for values in the inclusive range."""
        index = self._index(name)
        raw, path = index.tree.range(low, high)
        return [(value, _unpack_postings(p)) for value, p in raw], path

    def _index(self, name: str) -> SecondaryIndexDef:
        index = self._secondary.get(name)
        if index is None:
            raise StorageError(
                f"table {self.name!r} has no index {name!r}"
            )
        return index

    def _backfill(self, index: SecondaryIndexDef) -> None:
        postings: Dict[int, List[int]] = {}
        for pk, row in self.clustered.scan():
            value = index.extractor(row)
            if value is not None:
                postings.setdefault(value, []).append(pk)
        for value in sorted(postings):
            pks = postings[value]
            pks.sort()
            index.tree.insert(value, _pack_postings(pks))

    @staticmethod
    def _posting_add(tree: PagedBTree, value: int, pk: int) -> None:
        payload, _ = tree.get(value)
        if payload is None:
            tree.insert(value, _PK.pack(pk))
            return
        pks = _unpack_postings(payload)
        bisect.insort(pks, pk)
        tree.update(value, _pack_postings(pks))

    @staticmethod
    def _posting_remove(tree: PagedBTree, value: int, pk: int) -> None:
        payload, _ = tree.get(value)
        if payload is None:
            return
        pks = _unpack_postings(payload)
        if pk in pks:
            pks.remove(pk)
        if pks:
            tree.update(value, _pack_postings(pks))
        else:
            tree.delete(value)

"""Row serialization.

Rows are serialized to a tagged, length-prefixed byte format before they
touch a page or a log. This matters for fidelity: InnoDB's redo/undo logs
"record changes to the individual database records at the byte level"
(paper §3), and the forensic reconstruction in
:mod:`repro.forensics.redo_undo` parses exactly these bytes.

Format per value: 1 tag byte (``i`` int / ``s`` str / ``b`` bytes /
``n`` null) followed by a type-specific body. Integers are 8-byte
little-endian two's complement; strings and blobs are 4-byte length-prefixed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from ..errors import RecordError
from ..util.serialization import encode_uint, read_uint

Value = Union[int, str, bytes, None]
Row = Tuple[Value, ...]

_TAG_INT = ord("i")
_TAG_STR = ord("s")
_TAG_BYTES = ord("b")
_TAG_NULL = ord("n")

_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1


def encode_value(value: Value) -> bytes:
    """Encode one column value with its type tag."""
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        raise RecordError("boolean values are not part of the storage format")
    if isinstance(value, int):
        if not _INT_MIN <= value <= _INT_MAX:
            raise RecordError(f"integer {value} outside 64-bit signed range")
        return bytes([_TAG_INT]) + value.to_bytes(8, "little", signed=True)
    if isinstance(value, str):
        body = value.encode("utf-8")
        return bytes([_TAG_STR]) + encode_uint(len(body)) + body
    if isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        return bytes([_TAG_BYTES]) + encode_uint(len(body)) + body
    raise RecordError(f"unsupported value type {type(value).__name__}")


def decode_value(data: bytes, offset: int) -> Tuple[Value, int]:
    """Decode one tagged value at ``offset``; return ``(value, new_offset)``."""
    if offset >= len(data):
        raise RecordError(f"truncated value at offset {offset}")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_INT:
        end = offset + 8
        if end > len(data):
            raise RecordError(f"truncated integer at offset {offset}")
        return int.from_bytes(data[offset:end], "little", signed=True), end
    if tag in (_TAG_STR, _TAG_BYTES):
        length, offset = read_uint(data, offset)
        end = offset + length
        if end > len(data):
            raise RecordError(f"truncated string/blob at offset {offset}")
        body = data[offset:end]
        if tag == _TAG_STR:
            try:
                return body.decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise RecordError(f"invalid UTF-8 in record: {exc}") from exc
        return body, end
    raise RecordError(f"unknown value tag {tag:#x} at offset {offset - 1}")


def encode_row(row: Sequence[Value]) -> bytes:
    """Encode a full row: 4-byte column count then tagged values."""
    parts = [encode_uint(len(row))]
    parts.extend(encode_value(value) for value in row)
    return b"".join(parts)


def decode_row(data: bytes, offset: int = 0) -> Tuple[Row, int]:
    """Decode a row at ``offset``; return ``(row, new_offset)``."""
    count, offset = read_uint(data, offset)
    values: List[Value] = []
    for _ in range(count):
        value, offset = decode_value(data, offset)
        values.append(value)
    return tuple(values), offset


def row_size(row: Sequence[Value]) -> int:
    """Encoded size of ``row`` in bytes."""
    return len(encode_row(row))

"""Tablespaces: per-table page containers.

A tablespace owns a set of pages addressed by page id — the simulation's
equivalent of an InnoDB ``.ibd`` file. All page reads go through the buffer
pool attached by the caller (see :class:`repro.storage.buffer_pool.BufferPool`)
so that access patterns leave the cache evidence the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..errors import StorageError
from .page import Page, PageType


class Tablespace:
    """A named collection of pages with sequential id allocation."""

    def __init__(self, space_id: int, name: str) -> None:
        if space_id < 0:
            raise StorageError(f"space id must be non-negative, got {space_id}")
        self.space_id = space_id
        self.name = name
        self._pages: Dict[int, Page] = {}
        self._next_page_id = 0

    def allocate(
        self, page_type: PageType = PageType.ALLOCATED, level: int = 0
    ) -> Page:
        """Create a new page and register it in this tablespace."""
        page = Page(self._next_page_id, page_type, level)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        return page

    def page(self, page_id: int) -> Page:
        """Fetch a page by id."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(
                f"tablespace {self.name!r} has no page {page_id}"
            ) from None

    def has_page(self, page_id: int) -> bool:
        return page_id in self._pages

    def free(self, page_id: int) -> None:
        """Release a page (e.g. after a B+-tree merge)."""
        if page_id not in self._pages:
            raise StorageError(
                f"tablespace {self.name!r} cannot free unknown page {page_id}"
            )
        del self._pages[page_id]

    @property
    def page_ids(self) -> List[int]:
        return sorted(self._pages)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[Page]:
        for page_id in sorted(self._pages):
            yield self._pages[page_id]

    def to_bytes(self) -> bytes:
        """Serialize the whole tablespace (the ``.ibd`` image for disk theft)."""
        from ..util.serialization import encode_bytes, encode_uint, encode_str

        parts = [encode_uint(self.space_id), encode_str(self.name),
                 encode_uint(len(self._pages))]
        for page_id in sorted(self._pages):
            parts.append(encode_bytes(self._pages[page_id].to_bytes()))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Tablespace":
        """Parse a tablespace image produced by :meth:`to_bytes`."""
        from ..util.serialization import decode_bytes, decode_str, read_uint

        space_id, offset = read_uint(data, 0)
        name, offset = decode_str(data, offset)
        count, offset = read_uint(data, offset)
        space = cls(space_id, name)
        max_id = -1
        for _ in range(count):
            image, offset = decode_bytes(data, offset)
            page = Page.from_bytes(image)
            space._pages[page.page_id] = page
            max_id = max(max_id, page.page_id)
        space._next_page_id = max_id + 1
        return space

    def __repr__(self) -> str:
        return f"Tablespace(space_id={self.space_id}, name={self.name!r}, pages={len(self._pages)})"

"""Forensic command-line tools.

The operational face of :mod:`repro.forensics` — each tool parses one stolen
artifact file, mirroring the real-world utilities the paper mentions
(``mysqlbinlog`` "comes pre-installed with MySQL"):

* ``repro-demo``       — run a canned victim workload and write every disk
  artifact (plus a memory dump) into a directory, so the other tools have
  real input to chew on.
* ``repro-binlog``     — the ``mysqlbinlog`` equivalent: print timestamped
  statements from a binlog dump, optionally fitting the LSN-time model.
* ``repro-logparse``   — reconstruct INSERT/UPDATE/DELETE history from raw
  redo/undo log images.
* ``repro-bufferpool`` — infer B+-tree access paths from an
  ``ib_buffer_pool`` dump.
* ``repro-memscan``    — carve SQL statements, markers, and candidate tokens
  from a raw memory dump.

Install exposes them as console scripts; they are also runnable as
``python -m repro.tools.<name>``.
"""

"""``repro-binlog``: the ``mysqlbinlog`` equivalent.

Prints the timestamped write statements from a binlog text dump. With
``--date-lsn N`` it also fits the LSN-timestamp correlation model (paper §3)
and estimates when the transaction at log position ``N`` committed — even if
that position predates the retained binlog window.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..forensics import fit_lsn_timestamp_model, read_binlog_text


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-binlog", description=__doc__.splitlines()[0]
    )
    parser.add_argument("binlog", type=Path, help="binlog text dump (binlog.txt)")
    parser.add_argument(
        "--date-lsn",
        type=int,
        default=None,
        metavar="N",
        help="estimate the commit time of the transaction at LSN N",
    )
    args = parser.parse_args(argv)

    try:
        events = read_binlog_text(args.binlog.read_text())
    except (OSError, ReproError) as exc:
        print(f"repro-binlog: {exc}", file=sys.stderr)
        return 2
    if not events:
        print("no binlog events found")
        return 1
    for event in events:
        print(f"[{event.timestamp}] txn {event.txn_id} lsn {event.lsn}: "
              f"{event.statement}")
    print(f"-- {len(events)} events, window "
          f"[{events[0].timestamp}, {events[-1].timestamp}]")

    if args.date_lsn is not None:
        model = fit_lsn_timestamp_model(events)
        estimate = model.timestamp_for(args.date_lsn)
        print(f"-- estimated commit time at lsn {args.date_lsn}: {estimate:.0f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

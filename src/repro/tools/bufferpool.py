"""``repro-bufferpool``: infer recent B+-tree traversals from a pool dump.

Parses an ``ib_buffer_pool`` dump file (paper §3) and prints the maximal
root-to-leaf descent chains found in the LRU order — the access paths of
recent SELECTs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..forensics import infer_access_paths, parse_dump_text
from ..forensics.buffer_pool_dump import leaf_pages_touched


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bufferpool", description=__doc__.splitlines()[0]
    )
    parser.add_argument("dump", type=Path, help="ib_buffer_pool dump file")
    parser.add_argument(
        "--min-depth", type=int, default=2, help="ignore chains shorter than this"
    )
    args = parser.parse_args(argv)

    try:
        dump = parse_dump_text(args.dump.read_text())
    except (OSError, ReproError) as exc:
        print(f"repro-bufferpool: {exc}", file=sys.stderr)
        return 2
    paths = infer_access_paths(dump, min_depth=args.min_depth)
    for index, path in enumerate(paths):
        chain = " -> ".join(
            f"p{page}(L{level})" for page, level in zip(path.page_ids, path.levels)
        )
        print(f"traversal {index}: space {path.space_id}: {chain}")
    leaves = leaf_pages_touched(dump)
    print(
        f"-- {len(paths)} traversals inferred; {len(leaves)} leaf pages "
        f"resident ({len(dump.entries)} pages total)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

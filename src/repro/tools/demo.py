"""``repro-demo``: generate a directory of stolen-disk artifacts.

Runs a small victim workload on a fresh simulated server and writes out what
a disk thief (plus, with ``--with-memory``, a VM-snapshot attacker) would
hold:

* ``redo.log`` / ``undo.log`` — raw circular-log images
* ``binlog.txt``             — the mysqlbinlog-format dump
* ``ib_buffer_pool``         — the buffer-pool dump file
* ``<table>.ibd``            — tablespace images
* ``memory.dump``            — the process heap (optional)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..server import MySQLServer, ServerConfig
from ..snapshot import AttackScenario, capture
from ..workloads import customer_insert_statements, generate_customers
from ..workloads.tables import CUSTOMERS_DDL


def build_victim_server(seed: int = 0) -> MySQLServer:
    """The canned victim: a customers table with reads and writes."""
    server = MySQLServer(ServerConfig(query_cache_enabled=True))
    session = server.connect("webapp")
    server.execute(session, CUSTOMERS_DDL)
    for statement in customer_insert_statements(generate_customers(120, seed=seed)):
        server.execute(session, statement)
    for statement in (
        "SELECT name FROM customers WHERE id = 7",
        "SELECT * FROM customers WHERE state = 'IN'",
        "SELECT count(*) FROM customers WHERE age >= 40",
        "UPDATE customers SET balance = 0 WHERE id = 3",
        "DELETE FROM customers WHERE id = 99",
        "SELECT name FROM customers WHERE state = 'AZ'",
    ):
        server.execute(session, statement)
    server.dump_buffer_pool()
    return server


def write_artifacts(server: MySQLServer, out_dir: Path, with_memory: bool) -> list:
    """Write every artifact file; returns the paths written."""
    out_dir.mkdir(parents=True, exist_ok=True)
    scenario = (
        AttackScenario.VM_SNAPSHOT if with_memory else AttackScenario.DISK_THEFT
    )
    snap = capture(server, scenario)
    written = []

    def emit(name: str, data) -> None:
        path = out_dir / name
        if isinstance(data, bytes):
            path.write_bytes(data)
        else:
            path.write_text(data)
        written.append(path)

    emit("redo.log", snap.redo_log_raw or b"")
    emit("undo.log", snap.undo_log_raw or b"")
    emit("binlog.txt", snap.binlog_text or "")
    if snap.buffer_pool_dump is not None:
        emit("ib_buffer_pool", snap.buffer_pool_dump.to_text())
    for table, image in (snap.tablespace_images or {}).items():
        emit(f"{table}.ibd", image)
    if with_memory and snap.memory_dump is not None:
        emit("memory.dump", snap.memory_dump.data)
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-demo", description=__doc__.splitlines()[0]
    )
    parser.add_argument("out_dir", type=Path, help="directory to write artifacts to")
    parser.add_argument(
        "--with-memory",
        action="store_true",
        help="also capture the process memory (VM-snapshot scenario)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    try:
        server = build_victim_server(seed=args.seed)
        written = write_artifacts(server, args.out_dir, args.with_memory)
    except (OSError, ReproError) as exc:
        print(f"repro-demo: {exc}", file=sys.stderr)
        return 2
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro-logparse``: reconstruct write history from redo/undo images.

The Frühwirt-style forensic pass of paper §3: given raw circular-log images
(either or both), print every reconstructable row modification as
pseudo-SQL, including before-images of deleted and overwritten data.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..forensics import reconstruct_modifications, reconstruct_statements


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-logparse", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--redo", type=Path, default=None, help="raw redo log image (redo.log)"
    )
    parser.add_argument(
        "--undo", type=Path, default=None, help="raw undo log image (undo.log)"
    )
    parser.add_argument(
        "--table", default=None, help="only show events for this table"
    )
    args = parser.parse_args(argv)
    if args.redo is None and args.undo is None:
        parser.error("need --redo and/or --undo")

    try:
        redo = args.redo.read_bytes() if args.redo else None
        undo = args.undo.read_bytes() if args.undo else None
        events = reconstruct_modifications(redo, undo)
    except (OSError, ReproError) as exc:
        print(f"repro-logparse: {exc}", file=sys.stderr)
        return 2
    if args.table is not None:
        events = [e for e in events if e.table == args.table]

    for event, statement in zip(events, reconstruct_statements(events)):
        print(f"lsn {event.lsn:>10d} txn {event.txn_id:>5d}  {statement}")
    print(f"-- {len(events)} modifications reconstructed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

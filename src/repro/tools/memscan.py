"""``repro-memscan``: carve query text and tokens from a memory dump.

The paper §5 measurement as a tool: given a raw process-memory image, print
carved SQL statements, candidate search tokens (long hex runs), and —
with ``--marker`` — the residue counts for a specific string.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..memory import MemoryDump
from ..forensics.memory_scan import scan_for_tokens


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-memscan", description=__doc__.splitlines()[0]
    )
    parser.add_argument("dump", type=Path, help="raw memory image (memory.dump)")
    parser.add_argument(
        "--marker", default=None, help="count locations of this string"
    )
    parser.add_argument(
        "--tokens", action="store_true", help="list candidate hex tokens"
    )
    parser.add_argument(
        "--max-statements", type=int, default=20, help="cap carved SQL output"
    )
    args = parser.parse_args(argv)

    try:
        dump = MemoryDump(args.dump.read_bytes())
    except (OSError, ReproError) as exc:
        print(f"repro-memscan: {exc}", file=sys.stderr)
        return 2
    print(f"memory image: {dump.size:,} bytes")

    statements = dump.carve_sql()
    print(f"\ncarved SQL statements ({len(statements)} total):")
    seen = set()
    shown = 0
    for offset, text in statements:
        if text in seen or shown >= args.max_statements:
            continue
        seen.add(text)
        shown += 1
        print(f"  @{offset:>8d}: {text}")

    if args.tokens:
        tokens = scan_for_tokens(dump)
        print(f"\ncandidate tokens ({len(tokens)}):")
        for offset, hexstr in tokens[:20]:
            print(f"  @{offset:>8d}: {hexstr[:64]}{'...' if len(hexstr) > 64 else ''}")

    if args.marker is not None:
        count = dump.count_locations(args.marker)
        print(f"\nmarker {args.marker!r}: {count} locations")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

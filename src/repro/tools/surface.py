"""``repro-surface``: print the registry-derived Figure-1 table.

The scenario × artifact-class grid is computed from the artifact registry
(the same single inventory that drives ``capture()``, E1, and the
``repro-lint`` surface gate), so what this tool prints is, by construction,
what the code actually captures.

Exit codes: 0 — ok; 2 — usage/input error (unknown backend), reported on
stderr like the other repro-* tools.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..snapshot.registry import default_registry
from ..snapshot.scenario import ARTIFACT_COLUMNS, AttackScenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-surface",
        description=(
            "Print the scenario x artifact-class matrix (paper Figure 1) "
            "derived from the snapshot artifact registry."
        ),
    )
    parser.add_argument(
        "--backend",
        default="mysql",
        help="which registered backend to tabulate (default: mysql)",
    )
    parser.add_argument(
        "--providers",
        action="store_true",
        help="also list every registered provider for the backend",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the matrix and provider list as JSON",
    )
    return parser


def _render_matrix(registry, backend: str) -> str:
    matrix = registry.access_matrix(backend=backend)
    header = f"{'attack':24s}" + "".join(f"{col:20s}" for col in ARTIFACT_COLUMNS)
    lines = [header]
    for scenario in AttackScenario:
        row = matrix[scenario]
        cells = "".join(
            f"{'X' if row[col] else '':20s}" for col in ARTIFACT_COLUMNS
        )
        lines.append(f"{scenario.value:24s}{cells}")
    return "\n".join(lines)


def _render_providers(registry, backend: str) -> str:
    lines = [f"-- {len(registry.providers(backend))} registered providers --"]
    for provider in registry.providers(backend):
        gates = []
        if provider.requires_escalation:
            gates.append("escalation")
        if provider.enabled is not None:
            gates.append("conditional")
        suffix = f"  [{', '.join(gates)}]" if gates else ""
        lines.append(
            f"{provider.name:24s} {provider.quadrant.value:14s} "
            f"{provider.artifact_class:20s}{suffix}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    registry = default_registry()
    if args.backend not in registry.backends():
        known = ", ".join(registry.backends())
        print(
            f"repro-surface: unknown backend {args.backend!r} "
            f"(registered: {known})",
            file=sys.stderr,
        )
        return 2

    if args.json:
        matrix = registry.access_matrix(backend=args.backend)
        payload = {
            "backend": args.backend,
            "columns": list(ARTIFACT_COLUMNS),
            "matrix": {
                scenario.value: row for scenario, row in matrix.items()
            },
            "providers": [
                {
                    "name": p.name,
                    "quadrant": p.quadrant.value,
                    "class": p.artifact_class,
                    "requires_escalation": p.requires_escalation,
                    "conditional": p.enabled is not None,
                    "sinks": list(p.spec_sinks),
                    "forensic_reader": p.forensic_reader,
                }
                for p in registry.providers(args.backend)
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(_render_matrix(registry, args.backend))
    if args.providers:
        print()
        print(_render_providers(registry, args.backend))
    return 0


if __name__ == "__main__":
    sys.exit(main())

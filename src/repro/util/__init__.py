"""Small shared utilities: serialization, RNG helpers, text helpers."""

from .serialization import (
    decode_bytes,
    decode_str,
    decode_uint,
    encode_bytes,
    encode_str,
    encode_uint,
    read_uint,
)
from .text import format_bytes, truncate

__all__ = [
    "encode_uint",
    "decode_uint",
    "read_uint",
    "encode_bytes",
    "decode_bytes",
    "encode_str",
    "decode_str",
    "truncate",
    "format_bytes",
]

"""Byte-level serialization helpers.

The storage engine serializes rows, log records, and page payloads into raw
bytes so that forensic tooling can operate the way real InnoDB forensics does:
by parsing byte streams, not by walking Python objects. Everything here uses
explicit little-endian, length-prefixed encodings.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..errors import RecordError

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def encode_uint(value: int, width: int = 4) -> bytes:
    """Encode a non-negative integer as ``width`` little-endian bytes."""
    if value < 0:
        raise RecordError(f"cannot encode negative integer {value}")
    if width == 4:
        if value > 0xFFFFFFFF:
            raise RecordError(f"{value} does not fit in 4 bytes")
        return _U32.pack(value)
    if width == 8:
        if value > 0xFFFFFFFFFFFFFFFF:
            raise RecordError(f"{value} does not fit in 8 bytes")
        return _U64.pack(value)
    raise RecordError(f"unsupported integer width {width}")


def decode_uint(data: bytes, width: int = 4) -> int:
    """Decode a little-endian unsigned integer of ``width`` bytes."""
    if len(data) != width:
        raise RecordError(f"expected {width} bytes, got {len(data)}")
    if width == 4:
        return _U32.unpack(data)[0]
    if width == 8:
        return _U64.unpack(data)[0]
    raise RecordError(f"unsupported integer width {width}")


def read_uint(data: bytes, offset: int, width: int = 4) -> Tuple[int, int]:
    """Read an unsigned integer at ``offset``; return ``(value, new_offset)``."""
    end = offset + width
    if end > len(data):
        raise RecordError(
            f"truncated integer at offset {offset} (need {width} bytes, "
            f"have {len(data) - offset})"
        )
    return decode_uint(data[offset:end], width), end


def encode_bytes(payload: bytes) -> bytes:
    """Encode a byte string with a 4-byte length prefix."""
    return encode_uint(len(payload)) + payload


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed byte string; return ``(payload, new_offset)``."""
    length, offset = read_uint(data, offset)
    end = offset + length
    if end > len(data):
        raise RecordError(
            f"truncated byte string at offset {offset} "
            f"(declared {length} bytes, have {len(data) - offset})"
        )
    return data[offset:end], end


def encode_str(text: str) -> bytes:
    """Encode a string as length-prefixed UTF-8."""
    return encode_bytes(text.encode("utf-8"))


def decode_str(data: bytes, offset: int = 0) -> Tuple[str, int]:
    """Decode a length-prefixed UTF-8 string; return ``(text, new_offset)``."""
    payload, offset = decode_bytes(data, offset)
    try:
        return payload.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise RecordError(f"invalid UTF-8 payload: {exc}") from exc

"""Text helpers used by logs and reporting."""

from __future__ import annotations


def truncate(text: str, limit: int = 80) -> str:
    """Shorten ``text`` to at most ``limit`` characters with an ellipsis."""
    if limit <= 3:
        return text[:limit]
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def format_bytes(num_bytes: int) -> str:
    """Render a byte count in human-friendly units (MySQL-style binary)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"

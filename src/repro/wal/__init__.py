"""Unified write-ahead log: one durable, LSN-ordered record of everything.

Paper §3's forensic attacks work because the redo/undo/binlog streams are
byte-level, LSN-ordered records of every mutation. Historically this repo
kept those streams as three disjoint in-memory paths; this package unifies
them behind a single :class:`~repro.wal.log_manager.LogManager` that owns
the monotone LSN, appends checksummed length-prefixed records to segmented
on-disk log files, and exposes group-flush with an explicit fsync boundary.

The WAL is deliberately a *new snapshot-leakage surface* (registered in
``leakage_spec.json`` and the artifact registry): unlike the circular
in-memory views, on-disk segments retain every record ever flushed — the
substrate BigFoot (Pei & Shmatikov) attacks even when encrypted.

Layering: this package imports nothing from :mod:`repro.engine`; the engine
imports *us*. :mod:`repro.wal.recovery` reaches back into the engine lazily
(function-level imports) and is therefore not imported here — use
``from repro.wal.recovery import recover_engine`` explicitly.
"""

from .lsn import LsnCounter
from .log_manager import DEFAULT_CAPACITY, DEFAULT_SEGMENT_BYTES, LogManager, LogStream
from .records import (
    CheckpointBody,
    RedoRecord,
    UndoRecord,
    WalFrame,
    WalRecordType,
    pack_frame,
    parse_frames,
)

__all__ = [
    "CheckpointBody",
    "DEFAULT_CAPACITY",
    "DEFAULT_SEGMENT_BYTES",
    "LogManager",
    "LogStream",
    "LsnCounter",
    "RedoRecord",
    "UndoRecord",
    "WalFrame",
    "WalRecordType",
    "pack_frame",
    "parse_frames",
]

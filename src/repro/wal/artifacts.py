"""WAL-layer snapshot artifacts: segments, dirty-page table, recovery.

The unified WAL is deliberately registered as a first-class leakage
surface in the spirit of the paper's Figure 1: flushed segments are
persistent on-disk state a disk-theft attacker reads directly (and —
unlike the circular in-memory logs — they never evict), the live
dirty-page table is volatile engine state reachable only after code
execution, and a restart-recovery report documents what the recovery
pass itself disclosed about in-flight work.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..server import MySQLServer
from ..snapshot.registry import ArtifactProvider
from ..snapshot.scenario import StateQuadrant


def _capture_wal_segments(server: MySQLServer) -> Dict[str, bytes]:
    # Polymorphic over StorageEngine / ShardedEngine (shard-qualified
    # segment names, e.g. ``shard3/wal.00000001.log``).
    return server.engine.wal_segments()


def _capture_dirty_page_table(server: MySQLServer) -> Tuple:
    return server.engine.dirty_page_table()


def _capture_recovery_report(server: MySQLServer) -> Optional[Dict[str, object]]:
    report = server.engine.last_recovery_report
    return report.to_dict() if report is not None else None


def _paged_storage(server: MySQLServer) -> bool:
    return getattr(server.engine, "storage_mode", "memory") == "paged"


def _was_recovered(server: MySQLServer) -> bool:
    return getattr(server.engine, "last_recovery_report", None) is not None


def providers() -> Tuple[ArtifactProvider, ...]:
    """The WAL layer's registered leakage surfaces."""
    return (
        ArtifactProvider(
            name="wal_segments",
            backend="mysql",
            quadrant=StateQuadrant.PERSISTENT_DB,
            artifact_class="logs",
            capture=_capture_wal_segments,
            spec_sinks=("redo_log", "undo_log"),
            # The durable superset of the §3 circular-log surface: frames
            # never evict, so reconstruction reaches arbitrarily far back.
            forensic_reader="repro.forensics.wal_reader.parse_wal_segments",
        ),
        ArtifactProvider(
            name="dirty_page_table",
            backend="mysql",
            quadrant=StateQuadrant.VOLATILE_DB,
            artifact_class="data_structures",
            capture=_capture_dirty_page_table,
            enabled=_paged_storage,
            requires_escalation=True,
            # (table, page, rec-LSN) triples date each pending write-back;
            # checkpoints also persist them into the WAL (read_checkpoints).
            forensic_reader="repro.forensics.wal_reader.read_checkpoints",
        ),
        ArtifactProvider(
            name="recovery_report",
            backend="mysql",
            quadrant=StateQuadrant.PERSISTENT_DB,
            artifact_class="logs",
            capture=_capture_recovery_report,
            enabled=_was_recovered,
            forensic_reader="repro.forensics.wal_reader.recovery_exposure",
        ),
    )

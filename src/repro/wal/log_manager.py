"""The unified WAL manager: one LSN clock, one durable record stream.

:class:`LogManager` owns the monotone :class:`~repro.wal.lsn.LsnCounter`
and every log append in the engine goes through it:

* ``append_redo`` / ``append_undo`` — the historical byte-level row images.
  They advance the LSN by the record's serialized length, exactly as the
  old in-memory circular logs did, and are additionally retained in
  capacity-bounded :class:`LogStream` windows so the circular-log snapshot
  artifacts (E5/E13) stay byte-identical.
* ``append_clr`` / txn lifecycle / checkpoints / table registration — new
  control records for ARIES recovery. They are stamped with the current
  LSN but advance it by **zero** bytes, keeping the logical redo stream
  unchanged.

Appends are *staged*: nothing reaches the operating system until
:meth:`LogManager.flush` (group flush), which writes the pending frames to
the active segment file, rolls segments at ``segment_bytes``, and — when
``sync`` is on — ``fsync``\\ s before returning. :meth:`LogManager.flush_to`
is the buffer pool's WAL-rule hook: force the log up to a dirty page's
page-LSN before that page may hit disk.

Durability is also the leakage boundary: :meth:`LogManager.segments`
exposes exactly the flushed bytes — what a snapshot attacker gets from the
disk — never the staged tail that would be lost in a crash.
"""

from __future__ import annotations

import io
import os
import zlib
from collections import deque
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Generic,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from ..errors import LogError, WalError
from .lsn import LsnCounter
from .records import (
    FRAME_HEADER,
    CheckpointBody,
    RedoRecord,
    UndoRecord,
    WalFrame,
    WalRecordType,
    pack_frame,
    parse_frames,
    table_register_body,
    txn_body,
)

if TYPE_CHECKING:
    from ..obs.instrumentation import Instrumentation

RecordT = TypeVar("RecordT")

#: The paper's quoted default for undo + redo combined is 50 MB; we give each
#: log half of that.
DEFAULT_CAPACITY = 25 * 1000 * 1000

#: Segment roll threshold. Small enough that real workloads produce several
#: segments (the forensic surface is per-file), large enough to stay cheap.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Memory-mode engines cap resident sealed segments so an unbounded workload
#: cannot grow the process heap without bound; disk mode retains everything.
DEFAULT_MEMORY_SEGMENT_LIMIT = 64

_SEGMENT_PREFIX = "wal."
_SEGMENT_SUFFIX = ".log"


def segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


class LogStream(Generic[RecordT]):
    """A byte-capacity-bounded retention window over one record stream.

    This carries the old ``CircularLog`` mechanics — byte accounting and
    eviction of the oldest records once ``capacity_bytes`` is exceeded —
    but no longer owns the LSN: the :class:`LogManager` assigns it and
    hands ``(lsn, raw, record)`` triples in via :meth:`admit`.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise LogError(f"log capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: Deque[Tuple[int, bytes, RecordT]] = deque()
        self._used_bytes = 0
        self._total_appended = 0
        self._total_evicted = 0

    def check_fits(self, raw: bytes) -> None:
        """Reject a record that could never be retained (pre-LSN check)."""
        if len(raw) > self.capacity_bytes:
            raise LogError(
                f"record of {len(raw)} bytes exceeds log capacity "
                f"{self.capacity_bytes}"
            )

    def admit(self, lsn: int, raw: bytes, record: RecordT) -> None:
        """Retain an already-LSN-stamped record, evicting the oldest."""
        self._entries.append((lsn, raw, record))
        self._used_bytes += len(raw)
        self._total_appended += 1
        while self._used_bytes > self.capacity_bytes:
            _, old_raw, _ = self._entries.popleft()
            self._used_bytes -= len(old_raw)
            self._total_evicted += 1

    # -- inspection (the read API the engine facades re-export) ------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def num_records(self) -> int:
        """Records currently retained (not yet overwritten)."""
        return len(self._entries)

    @property
    def total_appended(self) -> int:
        return self._total_appended

    @property
    def total_evicted(self) -> int:
        return self._total_evicted

    @property
    def oldest_lsn(self) -> int:
        """LSN of the oldest retained record (-1 if empty)."""
        return self._entries[0][0] if self._entries else -1

    @property
    def newest_lsn(self) -> int:
        """LSN of the newest retained record (-1 if empty)."""
        return self._entries[-1][0] if self._entries else -1

    def records(self) -> List[RecordT]:
        """Retained records, oldest first (structured view)."""
        return [record for _, _, record in self._entries]

    def records_with_lsn(self) -> List[Tuple[int, RecordT]]:
        """Retained ``(lsn, record)`` pairs, oldest first."""
        return [(lsn, record) for lsn, _, record in self._entries]

    def raw_bytes(self) -> bytes:
        """The raw circular-log image a disk-theft attacker obtains.

        Each record is framed as ``lsn(8) || len(4) || body`` so the
        forensic parser can walk it without structured access.
        """
        from ..util.serialization import encode_uint

        parts = []
        for lsn, raw, _ in self._entries:
            parts.append(encode_uint(lsn, 8))
            parts.append(encode_uint(len(raw)))
            parts.append(raw)
        return b"".join(parts)


class _Segment:
    """One WAL segment: a name, its flushed byte count, and a sink."""

    __slots__ = ("name", "size", "path", "handle", "buffer")

    def __init__(
        self,
        name: str,
        *,
        path: Optional[str] = None,
        size: int = 0,
    ) -> None:
        self.name = name
        self.size = size
        self.path = path
        self.handle = None
        self.buffer: Optional[io.BytesIO] = None if path else io.BytesIO()


class LogManager:
    """Owns the LSN and the segmented on-disk (or in-memory) WAL."""

    def __init__(
        self,
        wal_dir: Optional[str] = None,
        lsn: Optional[LsnCounter] = None,
        redo_capacity: int = DEFAULT_CAPACITY,
        undo_capacity: int = DEFAULT_CAPACITY,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: bool = True,
        max_resident_segments: int = DEFAULT_MEMORY_SEGMENT_LIMIT,
        instrumentation: Optional["Instrumentation"] = None,
    ) -> None:
        if segment_bytes <= 0:
            raise WalError(f"segment size must be positive, got {segment_bytes}")
        if instrumentation is None:
            from ..obs.instrumentation import NO_OP_INSTRUMENTATION

            instrumentation = NO_OP_INSTRUMENTATION
        self._obs = instrumentation
        self.wal_dir = wal_dir
        self.segment_bytes = segment_bytes
        self.sync = sync
        self.max_resident_segments = max_resident_segments
        self.lsn = lsn if lsn is not None else LsnCounter()
        self.redo_stream: LogStream[RedoRecord] = LogStream(redo_capacity)
        self.undo_stream: LogStream[UndoRecord] = LogStream(undo_capacity)
        self._segments: List[_Segment] = []
        self._pending: List[bytes] = []
        self._pending_frames = 0
        self._flushed_lsn = self.lsn.current
        self._replaying = False
        self._closed = False
        self._flushes = 0
        self._syncs = 0
        self._appended_frames = 0
        self._flushed_frame_count = 0
        self._bytes_written = 0
        self._dropped_segments = 0
        self.resumed_frames = 0
        self.truncated_tail: Optional[str] = None
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
            self._resume_from_disk()
        if not self._segments:
            self._open_segment(segment_name(1))

    # -- resume ------------------------------------------------------------

    def _resume_from_disk(self) -> None:
        """Rebuild LSN position and retention windows from existing segments.

        Tolerates a torn tail in the *last* segment (a crash mid-append):
        the bad bytes are truncated away so new appends extend a valid log.
        """
        names = sorted(
            f
            for f in os.listdir(self.wal_dir)
            if f.startswith(_SEGMENT_PREFIX) and f.endswith(_SEGMENT_SUFFIX)
        )
        end_lsn = self.lsn.current
        for i, name in enumerate(names):
            path = os.path.join(self.wal_dir, name)
            with open(path, "rb") as fh:
                data = fh.read()
            frames, error = parse_frames(data, strict=False)
            good_end = (
                frames[-1].offset + FRAME_HEADER.size + len(frames[-1].body)
                if frames
                else 0
            )
            if error is not None:
                if i != len(names) - 1:
                    raise WalError(f"corrupt interior WAL segment {name}: {error}")
                self.truncated_tail = f"{name}: {error}"
                with open(path, "r+b") as fh:
                    fh.truncate(good_end)
            for frame in frames:
                if frame.rtype is WalRecordType.REDO:
                    self.redo_stream.admit(frame.lsn, frame.body, frame.decode())
                elif frame.rtype is WalRecordType.UNDO:
                    self.undo_stream.admit(frame.lsn, frame.body, frame.decode())
                end_lsn = max(end_lsn, frame.lsn + frame.lsn_advance)
                self.resumed_frames += 1
            self._segments.append(_Segment(name, path=path, size=good_end))
        if end_lsn > self.lsn.current:
            self.lsn.advance(end_lsn - self.lsn.current)
        self._flushed_lsn = self.lsn.current
        if self._segments:
            last = self._segments[-1]
            last.handle = open(last.path, "ab")

    # -- segment plumbing --------------------------------------------------

    def _open_segment(self, name: str) -> None:
        if self.wal_dir is not None:
            path = os.path.join(self.wal_dir, name)
            seg = _Segment(name, path=path)
            seg.handle = open(path, "ab")
        else:
            seg = _Segment(name)
        self._segments.append(seg)

    def _seal_active(self) -> None:
        active = self._segments[-1]
        if active.handle is not None:
            # A segment sealed mid-flush must be as durable as the final
            # one: with ``sync`` on, its frames would otherwise sit in the
            # OS cache while flush() reports them durable.
            active.handle.flush()
            if self.sync:
                os.fsync(active.handle.fileno())
                self._syncs += 1
            active.handle.close()
            active.handle = None
        if self.wal_dir is None:
            # Memory mode: bound resident sealed segments (oldest dropped,
            # like any circular log — disk mode keeps everything).
            resident = [s for s in self._segments if s.buffer is not None]
            while len(resident) > self.max_resident_segments:
                victim = resident.pop(0)
                victim.buffer = None
                self._dropped_segments += 1

    def _next_index(self) -> int:
        last = self._segments[-1].name
        return int(last[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]) + 1

    # -- append paths ------------------------------------------------------

    def _stage(self, lsn: int, rtype: WalRecordType, body: bytes) -> None:
        self._pending.append(pack_frame(lsn, rtype, body))
        self._pending_frames += 1
        self._appended_frames += 1

    def _ensure_open(self) -> None:
        if self._closed:
            raise WalError("log manager is closed")

    def append_redo(self, record: RedoRecord) -> int:
        """Append a redo after-image; returns its LSN (advances by length)."""
        self._ensure_open()
        if self._replaying:
            return self.lsn.current
        raw = record.to_bytes()
        with self._obs.span("log.append", table=record.table, detail="redo"):
            self.redo_stream.check_fits(raw)
            lsn = self.lsn.advance(len(raw))
            self.redo_stream.admit(lsn, raw, record)
            self._stage(lsn, WalRecordType.REDO, raw)
        self._obs.count("redo.appended_bytes", n=len(raw))
        return lsn

    def append_undo(self, record: UndoRecord) -> int:
        """Append an undo before-image; returns its LSN (advances by length)."""
        self._ensure_open()
        if self._replaying:
            return self.lsn.current
        raw = record.to_bytes()
        with self._obs.span("log.append", table=record.table, detail="undo"):
            self.undo_stream.check_fits(raw)
            lsn = self.lsn.advance(len(raw))
            self.undo_stream.admit(lsn, raw, record)
            self._stage(lsn, WalRecordType.UNDO, raw)
        self._obs.count("undo.appended_bytes", n=len(raw))
        return lsn

    def _append_control(self, rtype: WalRecordType, body: bytes) -> int:
        self._ensure_open()
        lsn = self.lsn.current
        if self._replaying:
            return lsn
        self._stage(lsn, rtype, body)
        return lsn

    def append_clr(self, record: RedoRecord) -> int:
        """Append a compensation record: the redo-format inverse applied by
        rollback. Stamped, not advancing — replay repeats history exactly."""
        return self._append_control(WalRecordType.CLR, record.to_bytes())

    def append_begin(self, txn_id: int) -> int:
        return self._append_control(WalRecordType.TXN_BEGIN, txn_body(txn_id))

    def append_commit(self, txn_id: int) -> int:
        return self._append_control(WalRecordType.TXN_COMMIT, txn_body(txn_id))

    def append_abort(self, txn_id: int) -> int:
        return self._append_control(WalRecordType.TXN_ABORT, txn_body(txn_id))

    def append_checkpoint(
        self,
        dirty_pages: Tuple[Tuple[str, int, int], ...],
        active_txns: Tuple[int, ...],
    ) -> int:
        body = CheckpointBody(self.lsn.current, tuple(dirty_pages), tuple(active_txns))
        return self._append_control(WalRecordType.CHECKPOINT, body.to_bytes())

    def append_table_register(self, name: str) -> int:
        return self._append_control(
            WalRecordType.TABLE_REGISTER, table_register_body(name)
        )

    @contextmanager
    def replaying(self):
        """Suppress appends while recovery repeats history (ARIES: the redo
        pass must not log)."""
        self._replaying = True
        try:
            yield self
        finally:
            self._replaying = False

    # -- group flush / durability boundary ---------------------------------

    @property
    def flushed_lsn(self) -> int:
        """Every LSN below this is durable (or resident, in memory mode)."""
        return self._flushed_lsn

    def flush(self) -> int:
        """Write all staged frames out; fsync when ``sync``. Returns the
        number of frames written (0 if nothing was pending)."""
        self._ensure_open()
        if not self._pending:
            self._flushed_lsn = self.lsn.current
            return 0
        written = 0
        for frame in self._pending:
            active = self._segments[-1]
            if active.size > 0 and active.size + len(frame) > self.segment_bytes:
                next_name = segment_name(self._next_index())
                self._seal_active()
                self._open_segment(next_name)
                active = self._segments[-1]
            if active.handle is not None:
                active.handle.write(frame)
            else:
                active.buffer.write(frame)
            active.size += len(frame)
            self._bytes_written += len(frame)
            written += 1
        active = self._segments[-1]
        if active.handle is not None:
            active.handle.flush()
            if self.sync:
                os.fsync(active.handle.fileno())
                self._syncs += 1
        self._pending.clear()
        self._pending_frames = 0
        self._flushed_frame_count += written
        self._flushes += 1
        self._flushed_lsn = self.lsn.current
        self._obs.count("wal.flushed_frames", n=written)
        return written

    def flush_to(self, lsn: int) -> None:
        """WAL rule hook: make the log durable at least up to ``lsn``.

        The buffer pool calls this before writing back a dirty page whose
        page-LSN is ``lsn``; a no-op when the log is already flushed past it.
        """
        if lsn > self._flushed_lsn and self._pending:
            self.flush()

    # -- inspection --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> List[str]:
        return [seg.name for seg in self._segments]

    def segments(self) -> Dict[str, bytes]:
        """Flushed segment bytes by name — the snapshot-leakage surface.

        Staged (pre-flush) frames are deliberately absent: a crash would
        lose them, so a disk snapshot cannot contain them either. Memory
        mode serves dropped sealed segments as empty.
        """
        out: Dict[str, bytes] = {}
        for seg in self._segments:
            if seg.path is not None:
                if seg.handle is not None:
                    seg.handle.flush()
                try:
                    with open(seg.path, "rb") as fh:
                        out[seg.name] = fh.read()
                except OSError:
                    out[seg.name] = b""
            else:
                out[seg.name] = seg.buffer.getvalue() if seg.buffer else b""
        return out

    def records(self) -> List[WalFrame]:
        """All flushed frames across segments, in append order."""
        frames: List[WalFrame] = []
        for name, data in self.segments().items():
            seg_frames, error = parse_frames(data, strict=False)
            if error is not None:
                raise WalError(f"corrupt WAL segment {name}: {error}")
            frames.extend(seg_frames)
        return frames

    @property
    def stats(self) -> Dict[str, object]:
        return {
            "wal_dir": self.wal_dir or "",
            "sync": self.sync,
            "segment_bytes": self.segment_bytes,
            "segments": len(self._segments),
            "dropped_segments": self._dropped_segments,
            "flushes": self._flushes,
            "syncs": self._syncs,
            "appended_frames": self._appended_frames,
            "flushed_frames": self._flushed_frame_count,
            "pending_frames": self._pending_frames,
            "bytes_written": self._bytes_written,
            "flushed_lsn": self._flushed_lsn,
            "end_lsn": self.lsn.current,
        }

    def checksum(self) -> int:
        """CRC-32 over all flushed segment bytes (cheap identity probe)."""
        crc = 0
        for data in self.segments().values():
            crc = zlib.crc32(data, crc)
        return crc & 0xFFFFFFFF

    # -- shutdown ----------------------------------------------------------

    def crash(self) -> None:
        """Simulate a kill -9: staged frames vanish, files stay as flushed."""
        self._pending.clear()
        self._pending_frames = 0
        for seg in self._segments:
            if seg.handle is not None:
                seg.handle.close()
                seg.handle = None
        self._closed = True

    def close(self) -> None:
        """Flush everything and release file handles. Idempotent."""
        if self._closed:
            return
        self.flush()
        for seg in self._segments:
            if seg.handle is not None:
                seg.handle.close()
                seg.handle = None
        self._closed = True

"""Log sequence numbers.

InnoDB's LSN is a byte offset into the logical redo stream; it only grows.
The paper's Section 3 timestamp-correlation attack exploits exactly this:
the binlog pairs (timestamp, LSN) at commit points, and the rate of LSN
growth lets an attacker date redo/undo entries that have already aged out of
the binlog window.

The counter lives here (not in :mod:`repro.engine`) because the unified WAL
owns it: redo and undo records consume LSN space byte-for-byte, while
control records (txn begin/commit/abort, checkpoints, CLRs) are stamped with
the current LSN but consume none — keeping the logical redo stream, and
every artifact derived from it, byte-identical to the pre-WAL engine.
"""

from __future__ import annotations

from ..errors import LogError


class LsnCounter:
    """Monotone byte-offset counter shared by the redo and undo logs."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise LogError(f"LSN must be non-negative, got {start}")
        self._lsn = start

    @property
    def current(self) -> int:
        """The next LSN to be assigned."""
        return self._lsn

    def advance(self, num_bytes: int) -> int:
        """Consume ``num_bytes`` of log space; return the record's start LSN."""
        if num_bytes <= 0:
            raise LogError(f"LSN advance must be positive, got {num_bytes}")
        start = self._lsn
        self._lsn += num_bytes
        return start

"""WAL record types and the on-disk frame format.

Every WAL record is framed as::

    lsn(8) || body_len(4) || crc32(4) || type(1) || body

little-endian, with ``crc32`` computed over ``type || body``. The checksum
makes torn tails self-describing: a crash mid-append leaves a frame whose
CRC does not verify, and :func:`parse_frames` (tolerant mode) stops there —
exactly how recovery finds the end of the usable log.

Redo and undo bodies are the byte-identical serializations the circular
in-memory logs always used (:meth:`RedoRecord.to_bytes`), so the logical
redo stream — and the paper's §3 forensics over it — is unchanged by the
WAL refactor. Control records (txn lifecycle, checkpoints, CLRs) are new:
they are stamped with the current LSN but advance it by zero bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from ..errors import LogError, WalError
from ..util.serialization import (
    decode_bytes,
    decode_str,
    encode_bytes,
    encode_str,
    encode_uint,
    read_uint,
)

_OPS = ("insert", "update", "delete")


class WalRecordType(IntEnum):
    """Discriminator byte for WAL frame bodies."""

    REDO = 1  #: row after-image; advances the LSN by len(body)
    UNDO = 2  #: row before-image; advances the LSN by len(body)
    CLR = 3  #: compensation record (redo-format inverse op); advances 0
    TXN_BEGIN = 4  #: transaction start; advances 0
    TXN_COMMIT = 5  #: transaction commit — the durability point; advances 0
    TXN_ABORT = 6  #: transaction rolled back (all CLRs written); advances 0
    CHECKPOINT = 7  #: fuzzy checkpoint w/ dirty-page table; advances 0
    TABLE_REGISTER = 8  #: DDL: table creation, in original order; advances 0


#: Frame header: lsn u64 | body_len u32 | crc u32 | type u8.
FRAME_HEADER = struct.Struct("<QIIB")


@dataclass(frozen=True)
class RedoRecord:
    """One redo entry: the after-image of a row change.

    ``after_image`` is the serialized row after the change (empty for a
    delete, which has no after state).
    """

    txn_id: int
    table: str
    op: str
    key: int
    after_image: bytes

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise LogError(f"unknown redo op {self.op!r}")

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                encode_uint(self.txn_id, 8),
                encode_str(self.table),
                encode_str(self.op),
                encode_uint(self.key & 0xFFFFFFFFFFFFFFFF, 8),
                encode_bytes(self.after_image),
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> "tuple[RedoRecord, int]":
        txn_id, offset = read_uint(data, offset, 8)
        table, offset = decode_str(data, offset)
        op, offset = decode_str(data, offset)
        key_u, offset = read_uint(data, offset, 8)
        key = key_u - (1 << 64) if key_u >= (1 << 63) else key_u
        after_image, offset = decode_bytes(data, offset)
        return cls(txn_id, table, op, key, after_image), offset


@dataclass(frozen=True)
class UndoRecord:
    """One undo entry: the before-image of a row change.

    ``before_image`` is the serialized row before the change (empty for an
    insert, which had no prior state).
    """

    txn_id: int
    table: str
    op: str
    key: int
    before_image: bytes

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise LogError(f"unknown undo op {self.op!r}")

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                encode_uint(self.txn_id, 8),
                encode_str(self.table),
                encode_str(self.op),
                encode_uint(self.key & 0xFFFFFFFFFFFFFFFF, 8),
                encode_bytes(self.before_image),
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> "tuple[UndoRecord, int]":
        txn_id, offset = read_uint(data, offset, 8)
        table, offset = decode_str(data, offset)
        op, offset = decode_str(data, offset)
        key_u, offset = read_uint(data, offset, 8)
        key = key_u - (1 << 64) if key_u >= (1 << 63) else key_u
        before_image, offset = decode_bytes(data, offset)
        return cls(txn_id, table, op, key, before_image), offset


@dataclass(frozen=True)
class CheckpointBody:
    """A fuzzy checkpoint: where recovery's analysis pass could start.

    ``dirty_pages`` is the buffer pool's dirty-page table at checkpoint
    time — ``(tablespace_name, page_id, rec_lsn)`` per dirty frame, where
    ``rec_lsn`` is the LSN that first dirtied the page. ``active_txns`` are
    the transaction ids in flight (potential losers).
    """

    checkpoint_lsn: int
    dirty_pages: Tuple[Tuple[str, int, int], ...]
    active_txns: Tuple[int, ...]

    def to_bytes(self) -> bytes:
        parts = [
            encode_uint(self.checkpoint_lsn, 8),
            encode_uint(len(self.active_txns)),
        ]
        for txn_id in self.active_txns:
            parts.append(encode_uint(txn_id, 8))
        parts.append(encode_uint(len(self.dirty_pages)))
        for name, page_id, rec_lsn in self.dirty_pages:
            parts.append(encode_str(name))
            parts.append(encode_uint(page_id))
            parts.append(encode_uint(rec_lsn, 8))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> "tuple[CheckpointBody, int]":
        checkpoint_lsn, offset = read_uint(data, offset, 8)
        n_active, offset = read_uint(data, offset)
        active = []
        for _ in range(n_active):
            txn_id, offset = read_uint(data, offset, 8)
            active.append(txn_id)
        n_dirty, offset = read_uint(data, offset)
        dirty = []
        for _ in range(n_dirty):
            name, offset = decode_str(data, offset)
            page_id, offset = read_uint(data, offset)
            rec_lsn, offset = read_uint(data, offset, 8)
            dirty.append((name, page_id, rec_lsn))
        return cls(checkpoint_lsn, tuple(dirty), tuple(active)), offset


@dataclass(frozen=True)
class WalFrame:
    """One parsed WAL frame: ``(lsn, type, body)`` plus its segment offset."""

    lsn: int
    rtype: WalRecordType
    body: bytes
    offset: int

    def decode(self):
        """Decode the body into its structured record (or plain value)."""
        if self.rtype in (WalRecordType.REDO, WalRecordType.CLR):
            record, _ = RedoRecord.from_bytes(self.body)
            return record
        if self.rtype is WalRecordType.UNDO:
            record, _ = UndoRecord.from_bytes(self.body)
            return record
        if self.rtype in (
            WalRecordType.TXN_BEGIN,
            WalRecordType.TXN_COMMIT,
            WalRecordType.TXN_ABORT,
        ):
            txn_id, _ = read_uint(self.body, 0, 8)
            return txn_id
        if self.rtype is WalRecordType.CHECKPOINT:
            body, _ = CheckpointBody.from_bytes(self.body)
            return body
        if self.rtype is WalRecordType.TABLE_REGISTER:
            name, _ = decode_str(self.body, 0)
            return name
        raise WalError(f"cannot decode WAL record type {self.rtype!r}")

    @property
    def lsn_advance(self) -> int:
        """How many LSN bytes this frame consumed (0 for control records)."""
        if self.rtype in (WalRecordType.REDO, WalRecordType.UNDO):
            return len(self.body)
        return 0


def txn_body(txn_id: int) -> bytes:
    """Body of a TXN_BEGIN / TXN_COMMIT / TXN_ABORT frame."""
    return encode_uint(txn_id, 8)


def table_register_body(name: str) -> bytes:
    """Body of a TABLE_REGISTER frame."""
    return encode_str(name)


def pack_frame(lsn: int, rtype: WalRecordType, body: bytes) -> bytes:
    """Frame ``body`` for the on-disk segment, checksummed over type+body."""
    crc = zlib.crc32(bytes([rtype]) + body) & 0xFFFFFFFF
    return FRAME_HEADER.pack(lsn, len(body), crc, rtype) + body


def parse_frames(
    data: bytes, *, strict: bool = True
) -> Tuple[List[WalFrame], Optional[str]]:
    """Walk one segment's bytes into frames.

    Returns ``(frames, error)``. In strict mode any truncation, CRC
    mismatch, or unknown type raises :class:`WalError`; in tolerant mode
    parsing stops at the first bad frame (a torn tail after a crash) and
    ``error`` describes it.
    """
    frames: List[WalFrame] = []
    offset = 0
    header_size = FRAME_HEADER.size
    while offset < len(data):
        if offset + header_size > len(data):
            error = f"truncated frame header at offset {offset}"
            if strict:
                raise WalError(error)
            return frames, error
        lsn, body_len, crc, type_byte = FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + header_size
        if body_start + body_len > len(data):
            error = f"truncated frame body at offset {offset}"
            if strict:
                raise WalError(error)
            return frames, error
        body = data[body_start : body_start + body_len]
        if zlib.crc32(bytes([type_byte]) + body) & 0xFFFFFFFF != crc:
            error = f"checksum mismatch at offset {offset}"
            if strict:
                raise WalError(error)
            return frames, error
        try:
            rtype = WalRecordType(type_byte)
        except ValueError:
            error = f"unknown record type {type_byte} at offset {offset}"
            if strict:
                raise WalError(error) from None
            return frames, error
        frames.append(WalFrame(lsn, rtype, body, offset))
        offset = body_start + body_len
    return frames, None

"""ARIES-style restart recovery over the unified WAL.

Given a data directory left behind by a crashed paged engine
(:meth:`~repro.engine.engine.StorageEngine.simulate_crash`, or any kill at
an arbitrary point), :func:`recover_engine` brings up a fresh engine whose
state is byte-equivalent to the committed prefix of the crashed run:

1. **Analysis** — walk every WAL segment (tolerating a torn tail),
   collecting the table-registration order, the last checkpoint (with its
   dirty-page table), per-transaction outcomes, and the loser set
   (transactions with records but neither COMMIT nor ABORT).
2. **Torn-page scan** — checksum-verify every ``*.ibd`` tablespace. Files
   are then moved aside to ``<name>.ibd.crashed`` (kept as forensic
   residue, not deleted — the paper's point is precisely that this data
   survives) and the engine is rebuilt from the log.
3. **Redo** — "repeat history": apply every REDO *and* CLR frame in log
   order through the paged tables, idempotently. CLRs written by live
   rollbacks replay the compensation too, so aborted transactions come out
   reverted without restart-side special cases.
4. **Undo** — walk losers' UNDO before-images in reverse log order and
   revert them (insert→delete, update→restore, delete→reinsert). The
   engine's first-writer-wins MVCC guarantees no committed transaction
   wrote a loser's key afterwards, so before-image undo is exact.
5. **Checkpoint** — the recovered engine checkpoints, making the rebuilt
   tablespaces durable and starting a fresh WAL epoch *after* the replayed
   history (the LSN continues from the crashed run's end; no LSN is ever
   reused).

Why always a full rebuild (no "replay since checkpoint onto existing
files" fast path): the WAL is *logical* (row-level) while write-back is
*physical* and in-place. After a crash, on-disk headers hold checkpoint-old
roots while some post-checkpoint page images may already be written — a
walkable-but-wrong tree that checksums clean. Physical redo would need
page-level logging; repeating logical history from LSN 0 is sound and is
what this module does.

This module imports the engine lazily inside functions —
:mod:`repro.wal` stays import-free of :mod:`repro.engine` at module level.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import PageError, RecoveryError, StorageError
from .records import CheckpointBody, RedoRecord, UndoRecord, WalFrame, WalRecordType

_CRASHED_SUFFIX = ".crashed"


@dataclass
class RecoveryReport:
    """What one restart recovery saw and did (the ``recovery_report``
    snapshot artifact — recovery itself is a leakage event: it decodes
    and re-applies every plaintext row image in the log)."""

    data_dir: str
    segments_scanned: int = 0
    records_scanned: int = 0
    truncated_tail: Optional[str] = None
    last_checkpoint_lsn: int = -1
    dirty_pages_at_checkpoint: Tuple[Tuple[str, int, int], ...] = ()
    torn_pages: Tuple[Tuple[str, int], ...] = ()
    unreadable_tablespaces: Tuple[str, ...] = ()
    tables: Tuple[str, ...] = ()
    committed_txns: Tuple[int, ...] = ()
    aborted_txns: Tuple[int, ...] = ()
    loser_txns: Tuple[int, ...] = ()
    clr_records: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    end_lsn: int = 0
    shard_reports: List["RecoveryReport"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "data_dir": self.data_dir,
            "segments_scanned": self.segments_scanned,
            "records_scanned": self.records_scanned,
            "truncated_tail": self.truncated_tail or "",
            "last_checkpoint_lsn": self.last_checkpoint_lsn,
            "dirty_pages_at_checkpoint": list(self.dirty_pages_at_checkpoint),
            "torn_pages": list(self.torn_pages),
            "unreadable_tablespaces": list(self.unreadable_tablespaces),
            "tables": list(self.tables),
            "committed_txns": list(self.committed_txns),
            "aborted_txns": list(self.aborted_txns),
            "loser_txns": list(self.loser_txns),
            "clr_records": self.clr_records,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "end_lsn": self.end_lsn,
            "shard_reports": [r.to_dict() for r in self.shard_reports],
        }


@dataclass
class _Analysis:
    """Outcome of the analysis pass over all WAL frames."""

    frames: List[WalFrame]
    tables: List[str]
    checkpoint: Optional[CheckpointBody]
    committed: Set[int]
    aborted: Set[int]
    losers: Set[int]
    clr_count: int
    truncated_tail: Optional[str]
    #: Highest transaction id appearing anywhere in the log — the recovered
    #: engine must issue ids strictly above this, or a second crash would
    #: classify a reused id by the *old* run's COMMIT/ABORT records.
    max_txn_id: int


def _read_segments(wal_dir: str) -> Tuple[List[Tuple[str, bytes]], int]:
    """All segment files under ``wal_dir``, name-sorted (= append order)."""
    if not os.path.isdir(wal_dir):
        return [], 0
    names = sorted(
        f
        for f in os.listdir(wal_dir)
        if f.startswith("wal.") and f.endswith(".log")
    )
    out = []
    for name in names:
        with open(os.path.join(wal_dir, name), "rb") as fh:
            out.append((name, fh.read()))
    return out, len(names)


def _analyze(wal_dir: str) -> Tuple[_Analysis, int]:
    """ARIES pass 1: scan the log, classify transactions, find the last
    checkpoint. Returns the analysis plus the segment count scanned."""
    from .records import parse_frames

    segments, n_segments = _read_segments(wal_dir)
    frames: List[WalFrame] = []
    truncated: Optional[str] = None
    for i, (name, data) in enumerate(segments):
        seg_frames, error = parse_frames(data, strict=False)
        if error is not None:
            if i != len(segments) - 1:
                raise RecoveryError(
                    f"corrupt interior WAL segment {name}: {error} "
                    "(only the final segment may carry a torn tail)"
                )
            truncated = f"{name}: {error}"
        frames.extend(seg_frames)
    tables: List[str] = []
    checkpoint: Optional[CheckpointBody] = None
    seen: Set[int] = set()
    committed: Set[int] = set()
    aborted: Set[int] = set()
    clr_count = 0
    for frame in frames:
        if frame.rtype is WalRecordType.TABLE_REGISTER:
            name = frame.decode()
            if name not in tables:
                tables.append(name)
        elif frame.rtype is WalRecordType.CHECKPOINT:
            checkpoint = frame.decode()
        elif frame.rtype is WalRecordType.TXN_BEGIN:
            seen.add(frame.decode())
        elif frame.rtype is WalRecordType.TXN_COMMIT:
            committed.add(frame.decode())
        elif frame.rtype is WalRecordType.TXN_ABORT:
            aborted.add(frame.decode())
        elif frame.rtype in (WalRecordType.REDO, WalRecordType.UNDO):
            seen.add(frame.decode().txn_id)
        elif frame.rtype is WalRecordType.CLR:
            clr_count += 1
            seen.add(frame.decode().txn_id)
    losers = seen - committed - aborted
    all_ids = seen | committed | aborted
    if checkpoint is not None:
        all_ids |= set(checkpoint.active_txns)
    return (
        _Analysis(
            frames=frames,
            tables=tables,
            checkpoint=checkpoint,
            committed=committed,
            aborted=aborted,
            losers=losers,
            clr_count=clr_count,
            truncated_tail=truncated,
            max_txn_id=max(all_ids, default=0),
        ),
        n_segments,
    )


def _scan_damage(
    data_dir: str, tables: List[str]
) -> Tuple[List[Tuple[str, int]], List[str]]:
    """Checksum-verify every tablespace; classify torn pages / dead files.

    Torn-page detection rides the existing 32-byte page headers: a page
    whose CRC does not match its payload was half-written at the crash.
    """
    from ..storage.paged.page_file import PageFile

    torn: List[Tuple[str, int]] = []
    unreadable: List[str] = []
    for name in tables:
        path = os.path.join(data_dir, f"{name}.ibd")
        if not os.path.exists(path):
            continue
        try:
            pf = PageFile(path, name)
        except (PageError, StorageError, OSError):
            unreadable.append(name)
            continue
        try:
            # Page 0 (the FSP header) was already checksum-read by the
            # constructor; a torn header lands in ``unreadable`` above.
            for page_id in range(1, pf.num_pages):
                try:
                    pf.read_page(page_id)
                except PageError:
                    torn.append((name, page_id))
        finally:
            pf.close()
    return torn, unreadable


def _move_aside(data_dir: str, tables: List[str]) -> None:
    """Park the crashed tablespace files as ``*.ibd.crashed`` residue."""
    for name in tables:
        path = os.path.join(data_dir, f"{name}.ibd")
        if os.path.exists(path):
            os.replace(path, path + _CRASHED_SUFFIX)


def _apply_redo(table, record: RedoRecord) -> None:
    """Idempotent 'repeat history' application of one redo/CLR record."""
    existing, _ = table.get(record.key)
    if record.op == "insert":
        if existing is None:
            table.insert(record.key, record.after_image)
        else:
            table.update(record.key, record.after_image)
    elif record.op == "update":
        if existing is None:
            table.insert(record.key, record.after_image)
        else:
            table.update(record.key, record.after_image)
    elif record.op == "delete":
        if existing is not None:
            table.delete(record.key)


def _apply_undo(table, record: UndoRecord) -> bool:
    """Revert one loser change using its before-image; True if it acted."""
    existing, _ = table.get(record.key)
    if record.op == "insert":
        if existing is not None:
            table.delete(record.key)
            return True
        return False
    if record.op == "update":
        if existing is not None:
            table.update(record.key, record.before_image)
        else:
            table.insert(record.key, record.before_image)
        return True
    if record.op == "delete":
        if existing is None:
            table.insert(record.key, record.before_image)
            return True
        return False
    return False  # pragma: no cover - ops validated at record creation


def recover_engine(data_dir: str, **engine_kwargs):
    """Recover a crashed paged engine from ``data_dir``; returns a fresh,
    open :class:`~repro.engine.engine.StorageEngine` with
    ``last_recovery_report`` attached.

    ``engine_kwargs`` are forwarded to the new engine (capacities, policy,
    ``wal_sync`` ...). ``storage``/``data_dir`` are fixed by recovery.

    Note: rows loaded via :meth:`StorageEngine.bulk_load` bypass the WAL by
    design (a loader fast path, as in real engines) and are therefore not
    recoverable by log replay — load, then checkpoint, before relying on
    crash recovery.
    """
    from ..engine.engine import StorageEngine

    if "storage" in engine_kwargs:
        raise RecoveryError("recover_engine sets 'storage' itself")
    wal_dir = os.path.join(data_dir, "wal")
    analysis, n_segments = _analyze(wal_dir)
    report = RecoveryReport(data_dir=data_dir)
    report.segments_scanned = n_segments
    report.records_scanned = len(analysis.frames)
    report.truncated_tail = analysis.truncated_tail
    report.tables = tuple(analysis.tables)
    report.committed_txns = tuple(sorted(analysis.committed))
    report.aborted_txns = tuple(sorted(analysis.aborted))
    report.loser_txns = tuple(sorted(analysis.losers))
    report.clr_records = analysis.clr_count
    if analysis.checkpoint is not None:
        report.last_checkpoint_lsn = analysis.checkpoint.checkpoint_lsn
        report.dirty_pages_at_checkpoint = analysis.checkpoint.dirty_pages

    torn, unreadable = _scan_damage(data_dir, analysis.tables)
    report.torn_pages = tuple(torn)
    report.unreadable_tablespaces = tuple(unreadable)
    _move_aside(data_dir, analysis.tables)

    engine = StorageEngine(storage="paged", data_dir=data_dir, **engine_kwargs)
    # Repeat history under replay: re-registration and replayed changes
    # must not append fresh WAL (the log already records them); the
    # resumed LogManager carries the crashed run's frames forward.
    with engine.wal.replaying():
        for name in analysis.tables:
            engine.register_table(name)
        tables = {name: engine.btree(name) for name in analysis.tables}
        for frame in analysis.frames:
            if frame.rtype in (WalRecordType.REDO, WalRecordType.CLR):
                record = frame.decode()
                table = tables.get(record.table)
                if table is None:
                    continue
                _apply_redo(table, record)
                report.redo_applied += 1
        for frame in reversed(analysis.frames):
            if frame.rtype is not WalRecordType.UNDO:
                continue
            record = frame.decode()
            if record.txn_id not in analysis.losers:
                continue
            table = tables.get(record.table)
            if table is None:
                continue
            if _apply_undo(table, record):
                report.undo_applied += 1
    # Restore the txn-id high-water mark: the resumed WAL still carries the
    # crashed run's frames, so reissuing one of its ids would let a later
    # recovery treat the new incarnation as already committed (or aborted).
    engine._next_txn_id = max(engine._next_txn_id, analysis.max_txn_id + 1)
    engine.checkpoint()
    report.end_lsn = engine.lsn.current
    engine.last_recovery_report = report
    return engine


def recover_sharded_engine(data_dir: str, num_shards: int, **engine_kwargs):
    """Recover every ``shard<i>/`` subdirectory, then bring up a fresh
    :class:`~repro.server.sharding.ShardedEngine` over the recovered files.

    Per-shard recovery is independent (each shard has its own WAL); the
    combined report nests the shard reports in shard order.
    """
    from ..server.sharding import SPACE_ID_STRIDE, ShardedEngine

    shard_reports: List[RecoveryReport] = []
    all_tables: List[str] = []
    next_txn_id = 1
    for i in range(num_shards):
        shard_dir = os.path.join(data_dir, f"shard{i}")
        if not os.path.isdir(shard_dir):
            raise RecoveryError(f"missing shard directory {shard_dir}")
        engine = recover_engine(
            shard_dir, space_id_base=i * SPACE_ID_STRIDE, **engine_kwargs
        )
        for name in engine.last_recovery_report.tables:
            if name not in all_tables:
                all_tables.append(name)
        next_txn_id = max(next_txn_id, engine._next_txn_id)
        shard_reports.append(engine.last_recovery_report)
        engine.close()
    sharded = ShardedEngine(
        num_shards=num_shards,
        storage="paged",
        data_dir=data_dir,
        **engine_kwargs,
    )
    with _sharded_replaying(sharded):
        for name in all_tables:
            sharded.register_table(name)
    # Txn-id high-water mark, coordinator and shards alike: the facade
    # allocates global ids, but per-shard paths (log_ddl, direct begin)
    # draw on the shard-local counters too.
    sharded._next_txn_id = max(sharded._next_txn_id, next_txn_id)
    for shard in sharded.shards:
        shard._next_txn_id = max(shard._next_txn_id, next_txn_id)
    report = RecoveryReport(data_dir=data_dir)
    report.tables = tuple(all_tables)
    report.shard_reports = shard_reports
    report.segments_scanned = sum(r.segments_scanned for r in shard_reports)
    report.records_scanned = sum(r.records_scanned for r in shard_reports)
    report.redo_applied = sum(r.redo_applied for r in shard_reports)
    report.undo_applied = sum(r.undo_applied for r in shard_reports)
    report.clr_records = sum(r.clr_records for r in shard_reports)
    report.torn_pages = tuple(
        (f"{t}@shard{i}", p)
        for i, r in enumerate(shard_reports)
        for t, p in r.torn_pages
    )
    report.loser_txns = tuple(
        sorted(set().union(*(set(r.loser_txns) for r in shard_reports)))
    )
    report.committed_txns = tuple(
        sorted(set().union(*(set(r.committed_txns) for r in shard_reports)))
    )
    report.end_lsn = max(r.end_lsn for r in shard_reports)
    sharded.last_recovery_report = report
    return sharded


class _sharded_replaying:
    """Context manager putting every shard's WAL into replay mode at once."""

    def __init__(self, sharded) -> None:
        self._contexts = [shard.wal.replaying() for shard in sharded.shards]

    def __enter__(self):
        for ctx in self._contexts:
            ctx.__enter__()
        return self

    def __exit__(self, *exc):
        for ctx in self._contexts:
            ctx.__exit__(*exc)
        return False

"""Workload generators: data and query distributions for the experiments.

* :mod:`.corpus` — a Zipf-distributed synthetic email corpus standing in
  for Enron (the substitution is documented in DESIGN.md §2).
* :mod:`.tables` — relational demo data (the CUSTOMERS table of §4).
* :mod:`.queries` — query generators: uniform range queries (the Lewi-Wu
  simulation), Zipfian point queries (frequency-analysis experiments).
"""

from .corpus import Corpus, Document, generate_corpus
from .tables import CustomerRow, generate_customers, customer_insert_statements
from .queries import (
    uniform_range_queries,
    zipf_point_queries,
    zipf_frequencies,
)

__all__ = [
    "Corpus",
    "Document",
    "generate_corpus",
    "CustomerRow",
    "generate_customers",
    "customer_insert_statements",
    "uniform_range_queries",
    "zipf_point_queries",
    "zipf_frequencies",
]

"""A synthetic email corpus with Enron-like keyword statistics.

The count attack (paper §6, experiment E7) depends on one corpus property:
among the most frequent keywords, most have a **unique** document count
("63% of the 500 most frequent words in the Enron email corpus have a unique
result count"). Natural-language corpora get this from Zipf's law: document
frequencies fall off as ``rank^-s``, so neighboring ranks rarely collide.

``generate_corpus`` draws per-keyword document counts from a Zipf profile
over a configurable vocabulary and materializes documents containing those
keywords; the resulting top-k unique-count fraction lands in the empirical
regime the paper cites (the benchmark measures it explicitly).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import WorkloadError

_WORD_STEMS = (
    "meeting", "contract", "energy", "price", "trade", "report", "market",
    "deal", "schedule", "review", "budget", "forecast", "legal", "offer",
    "invoice", "project", "credit", "risk", "audit", "payment",
)


def _vocabulary(size: int) -> List[str]:
    words = []
    index = 0
    while len(words) < size:
        stem = _WORD_STEMS[index % len(_WORD_STEMS)]
        suffix = index // len(_WORD_STEMS)
        words.append(stem if suffix == 0 else f"{stem}{suffix}")
        index += 1
    return words


@dataclass(frozen=True)
class Document:
    """One email: id, keyword set, and a rendered body."""

    doc_id: int
    keywords: Tuple[str, ...]
    body: str


@dataclass
class Corpus:
    """The generated corpus plus its ground-truth statistics."""

    documents: List[Document]
    keyword_doc_counts: Dict[str, int]

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def top_keywords(self, k: int) -> List[str]:
        """The ``k`` most frequent keywords (most documents first)."""
        return sorted(
            self.keyword_doc_counts,
            key=lambda w: (-self.keyword_doc_counts[w], w),
        )[:k]

    def auxiliary_counts(self, k: int) -> Dict[str, int]:
        """The attacker's auxiliary model: counts of the top-k keywords."""
        return {w: self.keyword_doc_counts[w] for w in self.top_keywords(k)}


def generate_corpus(
    num_documents: int = 16_000,
    vocabulary_size: int = 600,
    zipf_s: float = 1.0,
    max_doc_fraction: float = 0.35,
    seed: int = 0,
) -> Corpus:
    """Generate a Zipf-profiled corpus.

    Scaling note for experiment E7: with counts ``C/rank`` the top-k
    unique-count fraction is ~``sqrt(C)/k``. Enron (~500k documents) puts
    63% of the top **500** at unique counts; this default (16k documents,
    ``C ~ 5,600``) reproduces the same regime for the top **100** — the
    statistic scales with corpus size, the attack mechanics do not change.

    Parameters
    ----------
    num_documents:
        Corpus size.
    vocabulary_size:
        Distinct keywords; must cover the top-k window of interest.
    zipf_s:
        Zipf exponent of the document-frequency profile (1.0 ~ natural text).
    max_doc_fraction:
        Document frequency of the most common keyword.
    seed:
        RNG seed (the corpus is fully deterministic given the arguments).
    """
    if num_documents <= 0 or vocabulary_size <= 0:
        raise WorkloadError("corpus dimensions must be positive")
    if not 0 < max_doc_fraction <= 1:
        raise WorkloadError("max_doc_fraction must be in (0, 1]")
    rng = random.Random(seed)
    vocabulary = _vocabulary(vocabulary_size)

    doc_keywords: List[set] = [set() for _ in range(num_documents)]
    keyword_counts: Dict[str, int] = {}
    max_count = max(1, int(num_documents * max_doc_fraction))
    for rank, word in enumerate(vocabulary, start=1):
        # Zipf profile with multiplicative jitter so ties stay rare but do
        # occur (they do in Enron too; the unique fraction is below 100%).
        expected = max_count / (rank ** zipf_s)
        jittered = expected * rng.uniform(0.85, 1.15)
        count = max(1, min(num_documents, round(jittered)))
        keyword_counts[word] = count
        for doc_id in rng.sample(range(num_documents), count):
            doc_keywords[doc_id].add(word)

    documents = []
    for doc_id, words in enumerate(doc_keywords):
        ordered = tuple(sorted(words))
        body = f"email {doc_id}: " + " ".join(ordered)
        documents.append(Document(doc_id=doc_id, keywords=ordered, body=body))
    # Recompute actual counts (sampling is exact, but keep the invariant
    # explicit and independent of the generation path).
    actual: Dict[str, int] = {}
    for doc in documents:
        for word in doc.keywords:
            actual[word] = actual.get(word, 0) + 1
    return Corpus(documents=documents, keyword_doc_counts=actual)

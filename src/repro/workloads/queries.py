"""Query-distribution generators.

* :func:`uniform_range_queries` — the Lewi-Wu simulation's workload: range
  endpoints uniform over the full domain (paper §6).
* :func:`zipf_point_queries` — skewed equality queries for the frequency
  analysis experiments (Seabed / SPLASHE, Arx): real query workloads are
  heavily skewed, which is exactly what rank matching exploits.
* :func:`zipf_frequencies` — the corresponding auxiliary model.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..errors import WorkloadError


def uniform_range_queries(
    num_queries: int,
    domain_bits: int = 32,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """``num_queries`` ranges with both endpoints uniform (lo <= hi)."""
    if num_queries < 0:
        raise WorkloadError("num_queries must be non-negative")
    rng = random.Random(seed)
    domain = 1 << domain_bits
    queries = []
    for _ in range(num_queries):
        a, b = rng.randrange(domain), rng.randrange(domain)
        queries.append((min(a, b), max(a, b)))
    return queries


def zipf_frequencies(values: Sequence[int], s: float = 1.0) -> Dict[int, float]:
    """A Zipf probability model over ``values`` (most frequent first)."""
    if not values:
        raise WorkloadError("values must be non-empty")
    weights = [1.0 / (rank ** s) for rank in range(1, len(values) + 1)]
    total = sum(weights)
    return {value: w / total for value, w in zip(values, weights)}


def zipf_point_queries(
    values: Sequence[int],
    num_queries: int,
    s: float = 1.0,
    seed: int = 0,
) -> List[int]:
    """Draw ``num_queries`` equality-query targets Zipf-distributed over
    ``values`` (the first value is the most popular)."""
    if num_queries < 0:
        raise WorkloadError("num_queries must be non-negative")
    model = zipf_frequencies(values, s)
    rng = random.Random(seed)
    population = list(model)
    weights = [model[v] for v in population]
    return rng.choices(population, weights=weights, k=num_queries)

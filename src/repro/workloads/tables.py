"""Relational demo data: the CUSTOMERS table of the paper's Section 4."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import WorkloadError

STATES = (
    "IN", "AZ", "CA", "NY", "TX", "WA", "FL", "OH", "IL", "GA",
    "PA", "MI", "NC", "VA", "NJ", "MA",
)

_FIRST_NAMES = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
    "iris", "jack", "kate", "liam", "mona", "nick", "olga", "pete",
)


@dataclass(frozen=True)
class CustomerRow:
    """One customer record."""

    customer_id: int
    name: str
    state: str
    age: int
    balance: int


def generate_customers(count: int = 500, seed: int = 0) -> List[CustomerRow]:
    """Deterministically generate ``count`` customers."""
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    rows = []
    for customer_id in range(1, count + 1):
        rows.append(
            CustomerRow(
                customer_id=customer_id,
                name=f"{rng.choice(_FIRST_NAMES)}_{customer_id}",
                state=rng.choice(STATES),
                age=rng.randint(18, 90),
                balance=rng.randint(0, 100_000),
            )
        )
    return rows


CUSTOMERS_DDL = (
    "CREATE TABLE customers ("
    "id INT PRIMARY KEY, name TEXT, state TEXT, age INT, balance INT)"
)


def customer_insert_statements(
    rows: Sequence[CustomerRow], batch_size: int = 50
) -> List[str]:
    """Render INSERT statements (batched like a bulk loader would)."""
    if batch_size <= 0:
        raise WorkloadError(f"batch size must be positive, got {batch_size}")
    statements = []
    for start in range(0, len(rows), batch_size):
        batch = rows[start : start + batch_size]
        values = ", ".join(
            f"({r.customer_id}, '{r.name}', '{r.state}', {r.age}, {r.balance})"
            for r in batch
        )
        statements.append(
            "INSERT INTO customers (id, name, state, age, balance) "
            f"VALUES {values}"
        )
    return statements

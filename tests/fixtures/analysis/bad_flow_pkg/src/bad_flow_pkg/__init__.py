"""Known-bad fixture: same code as clean_pkg, but the spec documents nothing."""

"""A store whose log leak is NOT documented — the analyzer must flag it."""

from typing import List


class Log:
    def __init__(self) -> None:
        self._entries: List[str] = []

    def append(self, entry: str) -> None:
        self._entries.append(entry)


class Store:
    def __init__(self) -> None:
        self._log = Log()
        self._data: List[str] = []

    def put(self, value: str) -> None:
        self._data.append(value)
        self._log.append(value)

"""Known-bad fixture for the secure-deletion lint.

``Heap.free`` is a declared release point that never consults
``secure_delete``, and it is called from a taint-carrying function —
exactly the paper's E6 pattern (freed bytes survive into snapshots).
"""

"""A heap that frees without zeroing, reached from a tainted path."""

from typing import Dict, Optional


class Heap:
    def __init__(self) -> None:
        self._cells: Dict[int, Optional[str]] = {}
        self._next = 0

    def write(self, data: str) -> int:
        addr = self._next
        self._next += 1
        self._cells[addr] = data
        return addr

    def free(self, addr: int) -> None:
        # Deliberately leaves the bytes in place: no secure_delete guard.
        self._cells[addr] = self._cells.get(addr)


def process(heap: Heap, secret: str) -> None:
    addr = heap.write(secret)
    heap.free(addr)

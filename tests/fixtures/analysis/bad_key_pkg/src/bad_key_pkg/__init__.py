"""Known-bad fixture: key material reaches a persistence sink.

The spec even allowlists the flow under ``documented_flows`` — the
key-hygiene lint must flag it anyway.
"""

"""Writes the encryption key straight to disk. Never acceptable."""


class Disk:
    def persist(self, blob: str) -> None:
        self._last = blob


def backup(disk: Disk, key: str) -> None:
    disk.persist(key)

"""Known-good fixture: its one taint flow is documented in the spec."""

"""Known-bad fixture: one function per durability-ordering rule."""

"""One function per durability violation kind."""

from .wal import Tree, Wal


def unlogged_branch(wal: Wal, tree: Tree, key, row, cached: bool) -> None:
    if cached:
        tree.insert(key, row)  # fast path mutates without a WAL frame
        return
    wal.append_redo(key, row)
    tree.insert(key, row)


def unflushed_commit(wal: Wal, txn_id: int, is_write: bool) -> None:
    wal.append_commit(txn_id)
    if is_write:
        wal.flush()  # the read-only path acks with the record staged


def late_append(wal: Wal, txn_id: int, key, tail) -> None:
    wal.append_commit(txn_id)
    wal.flush()
    wal.append_redo(key, tail)  # staged after the durability barrier

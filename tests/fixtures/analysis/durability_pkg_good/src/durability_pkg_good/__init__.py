"""Known-good fixture: correct WAL-ordering idioms plus one waived finding."""

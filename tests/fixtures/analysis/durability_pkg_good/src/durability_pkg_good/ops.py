"""Correct WAL-ordering idioms: every check stays quiet (or is waived)."""

from .wal import Tree, Wal


def logged_insert(wal: Wal, tree: Tree, key, row) -> None:
    wal.append_redo(key, row)
    tree.insert(key, row)


def mutate_then_log(wal: Wal, tree: Tree, key, row) -> None:
    # Both orders are legal: the buffer pool's WAL rule covers write-back.
    tree.insert(key, row)
    wal.append_redo(key, row)


def clr_first_rollback(wal: Wal, tree: Tree, changes) -> None:
    for key, row in changes:
        wal.append_clr(key, row)  # CLR frame precedes each undo mutation
        tree.insert(key, row)


def flushed_commit(wal: Wal, txn_id: int) -> None:
    wal.append_commit(txn_id)
    wal.flush()


def group_commit(wal: Wal, txn_id: int, is_write: bool) -> None:
    # Deliberate no-force for read-only transactions: waived in the spec.
    wal.append_commit(txn_id)
    if is_write:
        wal.flush()

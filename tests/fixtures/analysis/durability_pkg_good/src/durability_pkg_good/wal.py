"""Minimal WAL + tree surface for the durability fixtures."""

from typing import Any, Dict, List, Tuple


class Wal:
    def __init__(self) -> None:
        self.staged: List[Tuple[Any, ...]] = []
        self.durable: List[Tuple[Any, ...]] = []

    def append_redo(self, key: Any, row: Any) -> None:
        self.staged.append(("redo", key, row))

    def append_clr(self, key: Any, row: Any) -> None:
        self.staged.append(("clr", key, row))

    def append_commit(self, txn_id: int) -> None:
        self.staged.append(("commit", txn_id))

    def flush(self) -> None:
        self.durable.extend(self.staged)
        self.staged.clear()


class Tree:
    def __init__(self) -> None:
        self.rows: Dict[Any, Any] = {}

    def insert(self, key: Any, row: Any) -> None:
        self.rows[key] = row

    def delete(self, key: Any) -> None:
        self.rows.pop(key, None)

"""Fixture: a taint flow routed through a first-class function reference."""

"""A registry-style collector: the sink is reached only through a
function reference stored in a dataclass field, the shape the snapshot
artifact registry uses."""

from dataclasses import dataclass
from typing import Callable, Dict, Tuple


class Source:
    pass


def read_secret(source: Source) -> str:
    return "secret"


@dataclass(frozen=True)
class Provider:
    name: str
    grab: Callable[[Source], str]


def _grab_secret(source: Source) -> str:
    return read_secret(source)


def providers() -> Tuple[Provider, ...]:
    return (Provider(name="secret", grab=_grab_secret),)


class Capture:
    def __init__(self, artifacts: Dict[str, str]) -> None:
        self.artifacts = artifacts


def collect(source: Source) -> Capture:
    out: Dict[str, str] = {}
    for provider in providers():
        out[provider.name] = provider.grab(source)
    return Capture(out)

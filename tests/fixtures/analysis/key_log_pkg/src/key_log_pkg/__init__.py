"""Fixture: key material formatted into log lines and f-strings."""

"""Key material reaching display surfaces: a logging call and an f-string.
The non-key banner must stay unflagged."""


class KeyStore:
    def load_key(self) -> bytes:
        return b"0123456789abcdef"


def startup(store: KeyStore, log) -> None:
    key = store.load_key()
    log.info("loaded key %s", key)


def debug_banner(store: KeyStore) -> str:
    key = store.load_key()
    return f"key={key!r}"


def safe_banner(version: str) -> str:
    return f"server v{version} ready"

"""Known-bad fixture for the lockset pass: two locks, no candidate."""

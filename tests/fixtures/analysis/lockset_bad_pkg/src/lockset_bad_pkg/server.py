"""Every access is lexically lock-guarded — the old shared-state rule is
silent by construction — but the two handlers hold *different* locks, so
the candidate lockset of REGISTRY is empty and the writes can interleave.
"""

from .state import REGISTRY


class _Lock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


lock_a = _Lock()
lock_b = _Lock()


class Server:
    def handle_a(self, key: str, value: str) -> None:
        with lock_a:
            REGISTRY[key] = value

    def handle_b(self, key: str) -> None:
        with lock_b:
            REGISTRY.pop(key, None)

"""Known-good fixture for the lockset pass: one lock, held everywhere."""

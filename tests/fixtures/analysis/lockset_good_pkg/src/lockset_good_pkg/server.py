"""A consistent single-lock discipline the lockset pass must not flag.

``_evict`` writes without a lexical guard — the lexical shared-state rule
would flag it — but it is only ever called with ``lock_a`` held, so its
held-at-entry set covers the access. ``Maintenance.sweep`` writes with no
lock at all, but the spec declares Maintenance a *serial* entry role: the
scheduler never overlaps it with the worker handlers, so MHP pruning
keeps it out of the candidate intersection.
"""

from .state import REGISTRY


class _Lock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


lock_a = _Lock()


class Server:
    def handle_a(self, key: str, value: str) -> None:
        with lock_a:
            REGISTRY[key] = value

    def handle_b(self, key: str) -> None:
        with lock_a:
            REGISTRY.pop(key, None)

    def handle_c(self, key: str) -> None:
        with lock_a:
            self._evict(key)

    def _evict(self, key: str) -> None:
        REGISTRY.pop(key, None)


class Maintenance:
    def sweep(self) -> None:
        REGISTRY.clear()

"""Fixture: the same constant nonce reused across two encrypt call sites."""

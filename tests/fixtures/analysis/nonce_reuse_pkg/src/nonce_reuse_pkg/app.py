"""Two call sites hand the cipher the same literal nonce — the classic
stream-cipher two-time pad. A third site uses a fresh nonce and must stay
unflagged."""


class Rng:
    def nonce(self) -> bytes:
        return b"fresh-every-call"


class StreamCipher:
    def encrypt(self, nonce: bytes, payload: bytes) -> bytes:
        return bytes(b ^ n for b, n in zip(payload, nonce))


def read_row(table: str) -> bytes:
    return b"row"


def encrypt_row(cipher: StreamCipher, table: str) -> bytes:
    return cipher.encrypt(b"fixed-nonce-0000", read_row(table))


def encrypt_index(cipher: StreamCipher, entry: bytes) -> bytes:
    return cipher.encrypt(b"fixed-nonce-0000", entry)


def encrypt_fresh(cipher: StreamCipher, rng: Rng, entry: bytes) -> bytes:
    return cipher.encrypt(rng.nonce(), entry)

"""Known-bad fixture for the resource-protocol (typestate) pass."""

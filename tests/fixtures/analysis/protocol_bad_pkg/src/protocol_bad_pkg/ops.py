"""One function per protocol violation kind."""

from .pool import Engine, Pool, decode


def pin_leak_on_exception(pool: Pool, raw: bytes) -> bytes:
    h = pool.acquire(1)
    row = decode(raw)  # may raise -> h never released
    pool.release(h)
    return row


def pin_leak_normal(pool: Pool, flag: bool) -> None:
    h = pool.acquire(2)
    if flag:
        pool.release(h)  # the other branch leaks the pin


def dirty_without_mark(pool: Pool) -> None:
    h = pool.acquire(3)
    h.payload = b"x"
    pool.release(h)  # mutated but released clean


def missing_abort(engine: Engine, raw: bytes):
    txn = engine.begin()
    try:
        engine.insert(txn, decode(raw))
    except ValueError:
        return None  # handler exits without rollback
    engine.commit(txn)
    return txn


def mutate_after_commit(engine: Engine, row: bytes) -> None:
    txn = engine.begin()
    engine.commit(txn)
    engine.insert(txn, row)  # txn already released


def undeclared_free(pool: Pool) -> None:
    pool.free(9)  # no residue_handlers declaration

"""Toy pool/engine protocol surface mirroring the paged storage layer."""


class Handle:
    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.payload = b""


class Pool:
    def acquire(self, page_id: int) -> Handle:
        if page_id < 0:
            raise ValueError("bad page id")
        return Handle(page_id)

    def release(self, handle: Handle, dirty: bool = False) -> None:
        pass

    def mark_dirty(self, handle: Handle) -> None:
        pass

    def free(self, page_id: int) -> None:
        pass


def decode(raw: bytes) -> bytes:
    if not raw:
        raise ValueError("empty payload")
    return raw


class Txn:
    pass


class Engine:
    def begin(self) -> Txn:
        return Txn()

    def commit(self, txn: Txn) -> None:
        pass

    def rollback(self, txn: Txn) -> None:
        pass

    def insert(self, txn: Txn, row: bytes) -> None:
        pass

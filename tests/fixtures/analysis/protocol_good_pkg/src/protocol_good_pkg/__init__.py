"""Known-good fixture for the resource-protocol (typestate) pass."""

"""Correct protocol idioms the pass must not flag.

``wrapper``/``wrapper_caller`` exercise the interprocedural summary: the
wrapper acquires-by-return, so its caller owns (and releases) the handle.
"""

from .pool import Engine, Handle, Pool, decode


def pin_guarded(pool: Pool, raw: bytes) -> bytes:
    h = pool.acquire(1)
    try:
        row = decode(raw)
    except BaseException:
        pool.release(h)
        raise
    pool.release(h)
    return row


def pin_dirty(pool: Pool) -> None:
    h = pool.acquire(2)
    h.payload = b"y"
    pool.release(h, dirty=True)


def pin_marked(pool: Pool) -> None:
    h = pool.acquire(3)
    h.payload = b"z"
    pool.mark_dirty(h)
    pool.release(h)


def txn_both_paths(engine: Engine, raw: bytes) -> bool:
    txn = engine.begin()
    try:
        engine.insert(txn, decode(raw))
    except ValueError:
        engine.rollback(txn)
        return False
    engine.commit(txn)
    return True


def declared_free(pool: Pool) -> None:
    pool.free(4)  # allowlisted via residue_handlers


def wrapper(pool: Pool) -> Handle:
    return pool.acquire(5)


def wrapper_caller(pool: Pool) -> None:
    h = wrapper(pool)
    pool.release(h)

"""Fixture: shared dict written from a server path without a lock."""

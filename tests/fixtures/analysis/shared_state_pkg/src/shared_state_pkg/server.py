"""Server entry points: one unguarded write (direct), one unguarded write
through a helper call, one correctly lock-guarded write."""

from .state import CACHE, _record


class Server:
    def __init__(self) -> None:
        self._lock = object()

    def handle(self, key: str, value: str) -> None:
        CACHE[key] = value

    def handle_indirect(self, key: str, value: str) -> None:
        _record(key, value)

    def handle_safe(self, key: str, value: str) -> None:
        with self._lock:
            CACHE[key] = value

"""Module-level shared state: CACHE is mutated, LIMITS is read-only."""

CACHE = {}
LIMITS = {"max_sessions": 10}


def _record(key: str, value: str) -> None:
    CACHE[key] = value


def maintenance() -> None:
    # Written here too, but nothing on a server path reaches this function,
    # so the reachability-gated lint must stay quiet about it.
    CACHE.clear()

"""Known-bad fixture: size and duration flows with no volume_surface declarations."""

"""A store whose telemetry persists secret-derived sizes and timings."""

import time
from typing import Dict, List


class Telemetry:
    """Persisted counter store — the volume attacker reads it back."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}

    def count(self, name: str, n: float = 0) -> None:
        self.counters[name] = self.counters.get(name, 0) + n


class Store:
    def __init__(self) -> None:
        self._rows: List[str] = []
        self.telemetry = Telemetry()

    def put(self, value: str) -> None:
        self._rows.append(value)

    def scan_count(self) -> None:
        # len() of the plaintext-tainted rows: volume.length born here.
        self.telemetry.count("rows_examined", n=len(self._rows))

    def timed_scan(self) -> List[str]:
        start = time.perf_counter()
        snapshot = list(self._rows)
        self.telemetry.count("scan_seconds", n=time.perf_counter() - start)
        return snapshot

    def bump(self) -> None:
        # Constant increment: no size provenance, must stay silent.
        self.telemetry.count("queries", n=1)

"""Known-good fixture: the same flows as volume_pkg_bad, fully declared."""

"""Deterministic concurrency test harness.

Gates the concurrency subsystem (``repro.concurrency``): every interleaving
is driven by a seeded scheduler over the simulated clock, so a failing
interleaving replays exactly from its printed seed. See :mod:`.driver` for
the drivers and :mod:`.workloads` for the E7/E13-shaped statement streams.
"""

from .driver import (
    InterleavingDriver,
    InterleavingResult,
    artifact_fingerprint,
    round_robin_scripts,
    run_frontend,
    run_serial,
)
from .workloads import e7_statements, e13_statements

__all__ = [
    "InterleavingDriver",
    "InterleavingResult",
    "artifact_fingerprint",
    "e13_statements",
    "e7_statements",
    "round_robin_scripts",
    "run_frontend",
    "run_serial",
]

"""Deterministic interleaving drivers.

Everything here is replayable: the only randomness is a ``random.Random``
seeded explicitly, and the only clock is the server's simulated one.
Statements execute atomically, so an *interleaving* is fully described by
the order in which sessions' statements are dispatched — which is exactly
what :class:`InterleavingDriver` records as its trace.

``run_serial`` / ``run_frontend`` are the byte-equivalence pair: the same
scripts executed directly in arrival order, and through the scheduler
front end. With the FIFO policy the dispatch order equals the arrival
order, so every captured artifact must be byte-identical between the two
(:func:`artifact_fingerprint` compares them, excluding the scheduler's own
queue telemetry, which only exists when a front end is attached).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.memory import MemoryDump
from repro.server import MySQLServer, ServerConfig
from repro.server.frontend import SchedulingPolicy, ServerFrontend
from repro.snapshot import AttackScenario, capture

#: Artifacts that exist only in one of the serial/concurrent pair.
EQUIVALENCE_EXCLUDED = ("scheduler_queue",)


@dataclass(frozen=True)
class InterleavingResult:
    """One deterministic run: the seed replays it exactly."""

    seed: int
    #: Dispatch order: ``(session_index, statement)`` per executed statement.
    trace: Tuple[Tuple[int, str], ...]
    #: Errors raised by statements, as ``(session_index, statement, error)``.
    errors: Tuple[Tuple[int, str, str], ...]
    server: MySQLServer

    def describe(self) -> str:
        """Replay instructions for failure messages (prints the seed)."""
        return (
            f"interleaving seed={self.seed}: "
            f"{len(self.trace)} statements dispatched, "
            f"{len(self.errors)} errored; "
            f"replay with InterleavingDriver(..., seed={self.seed}).run()"
        )


class InterleavingDriver:
    """Seeded random interleaving of per-session statement scripts.

    ``scripts[i]`` is session ``i``'s statement sequence; per-session order
    is preserved, cross-session order is drawn from ``random.Random(seed)``.
    Library errors (write conflicts, duplicate keys, ...) are recorded per
    statement and do not stop the run — concurrency tests assert on them.
    """

    def __init__(
        self,
        scripts: Sequence[Sequence[str]],
        setup: Sequence[str] = (),
        config: Optional[ServerConfig] = None,
        seed: int = 0,
    ) -> None:
        self.scripts = [list(s) for s in scripts]
        self.setup = list(setup)
        self.config = config
        self.seed = seed

    def run(self) -> InterleavingResult:
        server = MySQLServer(self.config)
        admin = server.connect("harness-admin")
        for statement in self.setup:
            server.execute(admin, statement)
        server.disconnect(admin)

        sessions = [
            server.connect(f"harness-{i}") for i in range(len(self.scripts))
        ]
        position = [0] * len(self.scripts)
        rng = random.Random(self.seed)
        trace: List[Tuple[int, str]] = []
        errors: List[Tuple[int, str, str]] = []
        while True:
            ready = [
                i for i, script in enumerate(self.scripts)
                if position[i] < len(script)
            ]
            if not ready:
                break
            idx = rng.choice(ready)
            statement = self.scripts[idx][position[idx]]
            position[idx] += 1
            trace.append((idx, statement))
            try:
                server.execute(sessions[idx], statement)
            except ReproError as exc:
                errors.append((idx, statement, f"{type(exc).__name__}: {exc}"))
        return InterleavingResult(
            seed=self.seed,
            trace=tuple(trace),
            errors=tuple(errors),
            server=server,
        )


def round_robin_scripts(
    statements: Sequence[str], num_sessions: int
) -> List[List[str]]:
    """Deal one statement stream round-robin onto ``num_sessions`` scripts."""
    scripts: List[List[str]] = [[] for _ in range(num_sessions)]
    for i, statement in enumerate(statements):
        scripts[i % num_sessions].append(statement)
    return scripts


def _arrival_order(scripts: Sequence[Sequence[str]]) -> List[Tuple[int, str]]:
    """The canonical arrival order: round-robin across sessions."""
    order: List[Tuple[int, str]] = []
    position = 0
    while True:
        emitted = False
        for idx, script in enumerate(scripts):
            if position < len(script):
                order.append((idx, script[position]))
                emitted = True
        if not emitted:
            return order
        position += 1


def run_serial(
    scripts: Sequence[Sequence[str]],
    setup: Sequence[str] = (),
    config: Optional[ServerConfig] = None,
) -> MySQLServer:
    """Execute the scripts directly, in canonical arrival order."""
    server = MySQLServer(config)
    admin = server.connect("harness-admin")
    for statement in setup:
        server.execute(admin, statement)
    server.disconnect(admin)
    sessions = [server.connect(f"harness-{i}") for i in range(len(scripts))]
    for idx, statement in _arrival_order(scripts):
        server.execute(sessions[idx], statement)
    return server


def run_frontend(
    scripts: Sequence[Sequence[str]],
    setup: Sequence[str] = (),
    config: Optional[ServerConfig] = None,
    policy: SchedulingPolicy = SchedulingPolicy.FIFO,
    num_workers: int = 8,
    seed: int = 0,
    queue_capacity: int = 1 << 20,
) -> Tuple[MySQLServer, ServerFrontend]:
    """Run the same scripts through the scheduler front end."""
    server = MySQLServer(config)
    admin = server.connect("harness-admin")
    for statement in setup:
        server.execute(admin, statement)
    server.disconnect(admin)
    frontend = ServerFrontend(
        server,
        num_workers=num_workers,
        policy=policy,
        queue_capacity=queue_capacity,
        seed=seed,
    )
    sessions = [frontend.open_session(f"harness-{i}") for i in range(len(scripts))]
    for idx, statement in _arrival_order(scripts):
        frontend.submit(sessions[idx], statement)
    frontend.drain()
    return server, frontend


def artifact_fingerprint(
    server: MySQLServer,
    exclude: Sequence[str] = EQUIVALENCE_EXCLUDED,
) -> Dict[str, str]:
    """SHA-256 of every captured artifact's canonical form.

    Captures the full-compromise snapshot (everything, escalated) and
    hashes each artifact's ``repr`` — dataclass reprs are deterministic
    functions of their field values, so equal fingerprints mean equal
    artifact *contents*, byte images included.
    """
    snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
    fingerprints: Dict[str, str] = {}
    for name in sorted(snap.artifacts):
        if name in exclude:
            continue
        value = snap.artifacts[name]
        if isinstance(value, MemoryDump):
            canonical = value.data  # default repr carries an object address
        else:
            canonical = repr(value).encode("utf-8")
        fingerprints[name] = hashlib.sha256(canonical).hexdigest()
    return fingerprints

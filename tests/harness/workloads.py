"""E7/E13-shaped statement streams for the concurrency harness.

These reproduce the statement *shapes* of the experiments — E7's SSE
document inserts and ``MATCH`` searches, E13's OPE-encrypted column
inserts and range probes — as plain deterministic statement lists: tags
and body ciphertexts are derived with SHA-256 (not the live randomized
ciphers) so two harness runs produce byte-identical statements and the
serial/concurrent artifact comparison is exact.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Tuple

from repro.crypto.ope import OpeCipher
from repro.workloads import generate_corpus, zipf_frequencies


def _tag(keyword: str) -> str:
    """A deterministic SSE-tag stand-in (32 hex chars, like a PRF tag)."""
    return hashlib.sha256(b"e7-tag:" + keyword.encode("utf-8")).hexdigest()[:32]


def e7_statements(
    num_documents: int = 96,
    vocabulary_size: int = 48,
    num_searches: int = 32,
    seed: int = 0,
) -> Tuple[List[str], List[str]]:
    """E7-shaped SSE workload: ``(setup_ddl, statements)``.

    Inserts hex-tag documents into the E7 table shape, interleaved with
    ``MATCH`` searches over the most frequent keywords.
    """
    rng = random.Random(seed)
    corpus = generate_corpus(
        num_documents=num_documents, vocabulary_size=vocabulary_size, seed=seed
    )
    setup = ["CREATE TABLE docs (id INT PRIMARY KEY, tags TEXT, body BLOB)"]
    statements: List[str] = []
    for doc in corpus.documents:
        tags = " ".join(sorted({_tag(word) for word in doc.keywords if word}))
        body_hex = hashlib.sha256(doc.body.encode("utf-8")).hexdigest()
        statements.append(
            f"INSERT INTO docs (id, tags, body) "
            f"VALUES ({doc.doc_id}, '{tags}', x'{body_hex}')"
        )
    top = corpus.top_keywords(min(vocabulary_size, 24))
    for _ in range(num_searches):
        keyword = rng.choice(top)
        statements.append(
            f"SELECT id FROM docs WHERE MATCH(tags, '{_tag(keyword)}')"
        )
    return setup, statements


def e13_statements(
    num_rows: int = 128,
    domain_low: int = 18,
    domain_high: int = 90,
    zipf_s: float = 0.8,
    num_probes: int = 24,
    seed: int = 0,
) -> Tuple[List[str], List[str]]:
    """E13-shaped OPE workload: ``(setup_ddl, statements)``.

    OPE-encrypted age inserts into the E13 ``staff`` table, interleaved
    with the order-revealing range probes the scheme exists to serve.
    """
    rng = random.Random(seed)
    domain = list(range(domain_low, domain_high + 1))
    model = zipf_frequencies(domain, s=zipf_s)
    ope = OpeCipher(b"ope-harness-key-0123456789abcdef", plaintext_bits=8)
    setup = ["CREATE TABLE staff (id INT PRIMARY KEY, age_ope INT)"]
    statements: List[str] = []
    ages = rng.choices(domain, weights=[model[v] for v in domain], k=num_rows)
    for row_id, age in enumerate(ages, start=1):
        statements.append(
            f"INSERT INTO staff (id, age_ope) VALUES ({row_id}, {ope.encrypt(age)})"
        )
    for _ in range(num_probes):
        low = ope.encrypt(rng.randint(domain_low, domain_high - 1))
        statements.append(
            f"SELECT COUNT(*) FROM staff WHERE age_ope >= {low}"
        )
    return setup, statements

"""Tests for repro.analysis: the taint analyzer and leakage-spec gate."""

import json
from pathlib import Path

import pytest

from repro.analysis import load_spec, run_analysis
from repro.analysis.cli import main as lint_main
from repro.analysis.registry_gate import registry_spec_problems
from repro.analysis.spec import LeakageSpec, SinkSpec, SnapshotArtifactSpec
from repro.errors import AnalysisError
from repro.snapshot import ArtifactProvider, ArtifactRegistry, StateQuadrant

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]


def run_fixture(name):
    root = FIXTURES / name
    return run_analysis(root / "src" / name, name, root / "leakage_spec.json")


class TestSpecLoading:
    def test_loads_repo_spec(self):
        spec = load_spec(REPO_ROOT / "leakage_spec.json")
        assert spec.package == "repro"
        assert "key" in spec.key_taints
        assert "persistence" in spec.forbidden_categories
        assert spec.sources and spec.sinks and spec.documented

    def test_param_source_exposes_param_name(self):
        spec = load_spec(FIXTURES / "clean_pkg" / "leakage_spec.json")
        (src,) = spec.sources
        assert src.param == "value"

    def test_forbidden_pairs_cross_key_taints_with_persistence(self):
        spec = load_spec(FIXTURES / "bad_key_pkg" / "leakage_spec.json")
        assert ("key", "disk") in spec.forbidden_pairs()

    def test_malformed_json_raises(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_spec(bad)

    def test_missing_package_raises(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(json.dumps({"taints": {}}))
        with pytest.raises(AnalysisError):
            load_spec(bad)

    def test_unknown_sink_category_raises(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(
            json.dumps(
                {
                    "package": "p",
                    "sinks": [
                        {"callable": "p.f", "sink": "s", "category": "bogus"}
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError):
            load_spec(bad)

    def test_undeclared_taint_in_source_raises(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(
            json.dumps(
                {
                    "package": "p",
                    "taints": {"plaintext": "x"},
                    "sources": [
                        {"callable": "p.f", "taint": "nope", "via": "return"}
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError):
            load_spec(bad)


class TestFixturePackages:
    def test_clean_package_passes(self):
        report = run_fixture("clean_pkg")
        assert report.exit_code == 0
        assert not report.violations
        assert [(f.taint, f.sink) for f in report.flows] == [("plaintext", "log")]

    def test_undocumented_flow_fails(self):
        report = run_fixture("bad_flow_pkg")
        assert report.exit_code == 1
        rules = {v.rule for v in report.violations}
        assert rules == {"undocumented-flow"}
        # The flow itself is still observed and reported.
        assert [(f.taint, f.sink) for f in report.flows] == [("plaintext", "log")]

    def test_key_to_persistence_fails_despite_allowlist(self):
        report = run_fixture("bad_key_pkg")
        assert report.exit_code == 1
        key_violations = [
            v for v in report.violations if v.rule == "key-hygiene"
        ]
        # One for the observed flow, one for the allowlist attempt itself.
        assert len(key_violations) == 2
        messages = " ".join(v.message for v in key_violations)
        assert "never be documented away" in messages

    def test_unguarded_release_point_fails(self):
        report = run_fixture("bad_free_pkg")
        assert report.exit_code == 1
        rules = {v.rule for v in report.violations}
        assert rules == {"secure-deletion"}
        (violation,) = report.violations
        assert "secure_delete" in violation.message
        assert violation.function == "bad_free_pkg.app.process"

    def test_function_reference_flow_is_observed(self):
        # The registry shape: a capture callable stored in a dataclass
        # field and invoked through the field read. The analyzer must see
        # the flow *through* the stored function, not lose it at the
        # indirect call site.
        report = run_fixture("fnref_pkg")
        assert report.exit_code == 0
        assert not report.violations
        assert [(f.taint, f.sink) for f in report.flows] == [
            ("plaintext", "capture")
        ]
        # And crucially: nothing stale — the documented flow IS observed.
        assert not report.stale_documented


class TestCli:
    def test_clean_fixture_json_output(self, capsys):
        rc = lint_main(
            [
                "--spec",
                str(FIXTURES / "clean_pkg" / "leakage_spec.json"),
                "--format",
                "json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["package"] == "clean_pkg"
        assert payload["flows"][0]["documented"] is True

    def test_bad_fixture_text_output(self, capsys):
        rc = lint_main(
            ["--spec", str(FIXTURES / "bad_flow_pkg" / "leakage_spec.json")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "undocumented flow" in out

    def test_missing_spec_is_usage_error(self, capsys):
        rc = lint_main(["--spec", "/nonexistent/leakage_spec.json"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_spec_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text("{not json")
        rc = lint_main(["--spec", str(bad)])
        assert rc == 2
        assert "malformed" in capsys.readouterr().err

    def test_explicit_package_dir(self, capsys):
        rc = lint_main(
            [
                "--spec",
                str(FIXTURES / "clean_pkg" / "leakage_spec.json"),
                "--package-dir",
                str(FIXTURES / "clean_pkg" / "src" / "clean_pkg"),
            ]
        )
        assert rc == 0
        assert "PASS" in capsys.readouterr().out


def _gate_spec(artifacts):
    """A minimal LeakageSpec carrying only what the gate consumes."""
    return LeakageSpec(
        package="p",
        sinks=[SinkSpec(callable="p.Log.append", sink="log", category="persistence")],
        snapshot_artifacts=list(artifacts),
        path="test-spec",
    )


def _gate_registry(*providers):
    registry = ArtifactRegistry()
    for provider in providers:
        registry.register(provider)
    return registry


def _gate_provider(name, **overrides):
    fields = dict(
        name=name,
        backend="mysql",
        quadrant=StateQuadrant.PERSISTENT_DB,
        artifact_class="logs",
        capture=lambda target: b"",
        spec_sinks=("log",),
    )
    fields.update(overrides)
    return ArtifactProvider(**fields)


class TestSnapshotArtifactSpec:
    def test_repo_spec_declares_snapshot_artifacts(self):
        spec = load_spec(REPO_ROOT / "leakage_spec.json")
        names = {a.name for a in spec.snapshot_artifacts}
        assert "redo_log_raw" in names
        assert "mongo_oplog_entries" in names
        assert "spark_event_log" in names

    def test_unknown_quadrant_rejected(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(
            json.dumps(
                {
                    "package": "p",
                    "snapshot_artifacts": [
                        {"name": "a", "quadrant": "sideways_db", "class": "logs"}
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError, match="unknown quadrant"):
            load_spec(bad)

    def test_unknown_class_rejected(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(
            json.dumps(
                {
                    "package": "p",
                    "snapshot_artifacts": [
                        {"name": "a", "quadrant": "volatile_db", "class": "blobs"}
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError, match="unknown artifact class"):
            load_spec(bad)

    def test_duplicate_artifact_rejected(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        entry = {"name": "a", "quadrant": "volatile_db", "class": "logs"}
        bad.write_text(
            json.dumps({"package": "p", "snapshot_artifacts": [entry, entry]})
        )
        with pytest.raises(AnalysisError, match="declared twice"):
            load_spec(bad)

    def test_unknown_sink_id_rejected(self, tmp_path):
        bad = tmp_path / "leakage_spec.json"
        bad.write_text(
            json.dumps(
                {
                    "package": "p",
                    "snapshot_artifacts": [
                        {
                            "name": "a",
                            "quadrant": "volatile_db",
                            "class": "logs",
                            "sinks": ["nosuch"],
                        }
                    ],
                }
            )
        )
        with pytest.raises(AnalysisError, match="unknown sink id"):
            load_spec(bad)


class TestRegistryGate:
    def test_repo_registry_matches_repo_spec(self):
        spec = load_spec(REPO_ROOT / "leakage_spec.json")
        assert registry_spec_problems(spec) == []

    def test_agreeing_inventories_are_clean(self):
        spec = _gate_spec(
            [
                SnapshotArtifactSpec(
                    name="a",
                    backend="mysql",
                    quadrant="persistent_db",
                    artifact_class="logs",
                    sinks=("log",),
                )
            ]
        )
        assert registry_spec_problems(spec, _gate_registry(_gate_provider("a"))) == []

    def test_unregistered_spec_entry_reported(self):
        spec = _gate_spec(
            [
                SnapshotArtifactSpec(
                    name="ghost",
                    backend="mysql",
                    quadrant="persistent_db",
                    artifact_class="logs",
                )
            ]
        )
        (problem,) = registry_spec_problems(spec, _gate_registry())
        assert "no provider registers" in problem

    def test_undeclared_provider_reported(self):
        spec = _gate_spec([])
        (problem,) = registry_spec_problems(
            spec, _gate_registry(_gate_provider("orphan"))
        )
        assert "no snapshot_artifacts entry" in problem

    def test_metadata_mismatches_reported(self):
        spec = _gate_spec(
            [
                SnapshotArtifactSpec(
                    name="a",
                    backend="mongo",
                    quadrant="volatile_db",
                    artifact_class="diagnostic_tables",
                    sinks=(),
                )
            ]
        )
        problems = registry_spec_problems(spec, _gate_registry(_gate_provider("a")))
        text = " ".join(problems)
        assert "backend" in text
        assert "quadrant" in text
        assert "class" in text
        assert "sinks" in text

    def test_cli_gate_fails_on_drift(self, tmp_path, capsys):
        # A spec whose snapshot_artifacts disagree with the shipped
        # registry: the analysis itself passes, the gate fails (exit 1).
        fixture = FIXTURES / "fnref_pkg"
        raw = json.loads((fixture / "leakage_spec.json").read_text())
        raw["snapshot_artifacts"] = [
            {"name": "ghost_artifact", "quadrant": "persistent_db", "class": "logs"}
        ]
        spec_path = tmp_path / "leakage_spec.json"
        spec_path.write_text(json.dumps(raw))
        rc = lint_main(
            [
                "--spec",
                str(spec_path),
                "--package-dir",
                str(fixture / "src" / "fnref_pkg"),
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "repro-lint: " in err
        assert "ghost_artifact" in err
        # Drift is symmetric: registered-but-undeclared is also flagged.
        assert "no snapshot_artifacts entry" in err


@pytest.fixture(scope="module")
def repo_report():
    return run_analysis(
        REPO_ROOT / "src" / "repro", "repro", REPO_ROOT / "leakage_spec.json"
    )


class TestRealTree:
    """The shipped tree must satisfy its own leakage spec."""

    def test_shipped_tree_is_clean(self, repo_report):
        assert repo_report.violations == []
        assert repo_report.exit_code == 0
        assert not repo_report.warnings
        assert not repo_report.stale_documented

    def test_core_paper_flows_are_observed(self, repo_report):
        pairs = {(f.taint, f.sink) for f in repo_report.flows}
        # E1/E3: plaintext persists in the recovery logs and binlog.
        assert ("plaintext", "redo_log") in pairs
        assert ("plaintext", "binlog") in pairs
        # E12: key material appears in memory and in the snapshot capture.
        assert ("key", "heap") in pairs
        assert ("key", "snapshot") in pairs

    def test_key_never_reaches_persistence(self, repo_report):
        spec = repo_report.spec
        for flow in repo_report.flows:
            if flow.taint in spec.key_taints:
                assert flow.category not in spec.forbidden_categories

    def test_every_flow_is_documented(self, repo_report):
        spec = repo_report.spec
        documented = spec.documented_pairs()
        # Volume flows are judged by the volume pass against the
        # volume_surface declarations, not documented_flows.
        volume_kinds = spec.volume_kinds()
        declared_volume = (
            spec.volume_surface.declared_pairs()
            if spec.volume_surface is not None
            else set()
        )
        persisted = (
            set(spec.volume_surface.categories)
            if spec.volume_surface is not None
            else set()
        )
        for flow in repo_report.flows:
            if flow.taint in volume_kinds:
                # Transient (memory-category) volume sinks are out of
                # scope: the attacker model reads persisted artifacts.
                if flow.category in persisted:
                    assert (flow.taint, flow.sink) in declared_volume
            else:
                assert (flow.taint, flow.sink) in documented

    def test_volume_surface_artifact_is_fresh(self, repo_report):
        """The committed volume_surface.json matches a fresh rebuild."""
        from repro.analysis.passes import build_volume_surface

        surface = build_volume_surface(repo_report.spec, repo_report.flows)
        committed = json.loads(
            (REPO_ROOT / "volume_surface.json").read_text(encoding="utf-8")
        )
        assert committed == surface
        # Every sink entry in the artifact is declared, none UNDECLARED.
        for entry in surface["sinks"].values():
            for flow in entry["flows"]:
                assert flow["source"] != "UNDECLARED"

"""Tests for the incremental cache, parallel parse, and retraction fallback."""

import shutil
import textwrap
from pathlib import Path

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _copy_fixture(tmp_path, name):
    work = tmp_path / name
    shutil.copytree(FIXTURES / name, work)
    return work


def _run(work, name, **kwargs):
    return run_analysis(
        work / "src" / name, name, work / "leakage_spec.json", **kwargs
    )


class TestWarmFullCache:
    def test_second_run_is_warm_and_byte_identical(self, tmp_path):
        work = _copy_fixture(tmp_path, "bad_flow_pkg")
        cache = tmp_path / "cache"
        cold = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert cold.cache_stats["mode"] == "cold"
        warm = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert warm.cache_stats["mode"] == "warm-full"
        assert warm.cache_stats["functions_reanalyzed"] == 0
        assert warm.to_json() == cold.to_json()

    def test_no_cache_dir_means_always_cold(self, tmp_path):
        work = _copy_fixture(tmp_path, "bad_flow_pkg")
        first = _run(work, "bad_flow_pkg")
        second = _run(work, "bad_flow_pkg")
        assert first.cache_stats["mode"] == "cold"
        assert second.cache_stats["mode"] == "cold"

    def test_spec_edit_invalidates_tree_cache(self, tmp_path):
        work = _copy_fixture(tmp_path, "bad_flow_pkg")
        cache = tmp_path / "cache"
        _run(work, "bad_flow_pkg", cache_dir=cache)
        spec_file = work / "leakage_spec.json"
        spec_file.write_text(spec_file.read_text() + "\n")
        rerun = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert rerun.cache_stats["mode"] != "warm-full"


class TestIncrementalCone:
    def test_single_module_edit_reanalyzes_only_the_cone(self, tmp_path):
        work = _copy_fixture(tmp_path, "shared_state_pkg")
        cache = tmp_path / "cache"
        cold = _run(work, "shared_state_pkg", cache_dir=cache)

        # Additive edit to a leaf module (server.py imports state.py, not
        # vice versa): new helper function, nothing removed.
        state = work / "src" / "shared_state_pkg" / "server.py"
        state.write_text(
            state.read_text()
            + textwrap.dedent(
                """

                def _edit_probe() -> int:
                    return 1
                """
            )
        )
        warm = _run(work, "shared_state_pkg", cache_dir=cache)
        stats = warm.cache_stats
        assert stats["mode"] == "warm-incremental"
        # Only server.py is dirty; state.py and __init__ stay clean.
        assert stats["modules_dirty"] < stats["modules_total"]
        assert stats["functions_reanalyzed"] < stats["functions_total"]

        # The incremental report must match a from-scratch run on the same
        # edited tree exactly.
        fresh = _run(work, "shared_state_pkg")
        assert warm.to_json() == fresh.to_json()
        assert sorted(v.fingerprint for v in warm.violations) == sorted(
            v.fingerprint for v in cold.violations
        )

    def test_retraction_falls_back_to_cold(self, tmp_path):
        work = _copy_fixture(tmp_path, "bad_flow_pkg")
        cache = tmp_path / "cache"
        cold = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert cold.violations

        # Rewrite the module so previously-cached facts no longer hold
        # (calls/taint disappear). Seeded clean summaries would be stale, so
        # the driver must detect the retraction and redo a full run.
        app = work / "src" / "bad_flow_pkg"
        offenders = [
            p for p in app.glob("*.py") if p.name != "__init__.py"
        ]
        target = offenders[0]
        target.write_text(
            '"""Stubbed out."""\n\n\ndef gone() -> None:\n    return None\n'
        )
        warm = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert warm.cache_stats["mode"] in {"warm-fallback", "cold"}
        fresh = _run(work, "bad_flow_pkg")
        assert warm.to_json() == fresh.to_json()

    def test_removed_module_forces_full_run(self, tmp_path):
        work = _copy_fixture(tmp_path, "shared_state_pkg")
        cache = tmp_path / "cache"
        _run(work, "shared_state_pkg", cache_dir=cache)
        # Delete state.py and drop references so the package still parses.
        (work / "src" / "shared_state_pkg" / "state.py").unlink()
        server = work / "src" / "shared_state_pkg" / "server.py"
        server.write_text(
            '"""No shared state left."""\n\n\nclass Server:\n'
            "    def handle(self) -> None:\n        return None\n"
        )
        rerun = _run(work, "shared_state_pkg", cache_dir=cache)
        assert rerun.cache_stats["mode"] == "cold"
        fresh = _run(work, "shared_state_pkg")
        assert rerun.to_json() == fresh.to_json()


class TestCacheRobustness:
    def test_corrupted_cache_files_degrade_to_cold(self, tmp_path):
        work = _copy_fixture(tmp_path, "bad_flow_pkg")
        cache = tmp_path / "cache"
        cold = _run(work, "bad_flow_pkg", cache_dir=cache)
        for blob in cache.rglob("*"):
            if blob.is_file():
                blob.write_bytes(b"\x00not a cache entry\xff")
        rerun = _run(work, "bad_flow_pkg", cache_dir=cache)
        assert rerun.cache_stats["mode"] == "cold"
        assert rerun.to_json() == cold.to_json()


class TestParallelParse:
    def test_jobs_two_matches_serial(self, tmp_path):
        work = _copy_fixture(tmp_path, "shared_state_pkg")
        serial = _run(work, "shared_state_pkg", jobs=1)
        parallel = _run(work, "shared_state_pkg", jobs=2)
        assert parallel.to_json() == serial.to_json()

    def test_real_tree_serial_vs_parallel(self):
        spec = REPO_ROOT / "leakage_spec.json"
        pkg = REPO_ROOT / "src" / "repro"
        serial = run_analysis(pkg, "repro", spec, jobs=1)
        parallel = run_analysis(pkg, "repro", spec, jobs=2)
        assert parallel.to_json() == serial.to_json()

"""Tests for the lint-pass registry and the crypto/shared-state passes."""

from pathlib import Path

from repro.analysis import default_registry, load_spec, run_analysis

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run_fixture(name):
    root = FIXTURES / name
    return run_analysis(root / "src" / name, name, root / "leakage_spec.json")


class TestPassRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        names = [p.name for p in registry.passes()]
        assert names == [
            "undocumented-flows",
            "key-hygiene",
            "secure-deletion",
            "crypto-misuse",
            "shared-state",
            "protocol",
            "lockset",
            "volume-flows",
            "durability-ordering",
        ]

    def test_rule_table_is_sorted_and_complete(self):
        rules = default_registry().rules()
        ids = [m.id for m in rules]
        assert ids == sorted(ids)
        assert set(ids) == {
            "undocumented-flow",
            "key-hygiene",
            "secure-deletion",
            "crypto-nonce-reuse",
            "crypto-key-display",
            "crypto-det-misuse",
            "shared-state-unguarded",
            "protocol-leak",
            "protocol-exception-leak",
            "protocol-dirty-unpin",
            "protocol-unguarded-mutation",
            "protocol-undeclared-free",
            "lockset-race",
            "volume-undeclared-flow",
            "durability-unlogged-mutation",
            "durability-unflushed-commit",
            "durability-append-after-flush",
        }
        for meta in rules:
            assert meta.name and meta.short_description

    def test_duplicate_pass_rejected(self):
        registry = default_registry()
        existing = registry.passes()[0]
        try:
            registry.register(existing)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("duplicate registration must raise")


class TestCryptoNonceReuse:
    def test_flags_repeated_constant_nonce(self):
        report = run_fixture("nonce_reuse_pkg")
        assert report.exit_code == 1
        rules = [v.rule for v in report.violations]
        assert rules == ["crypto-nonce-reuse"]
        (violation,) = report.violations
        # Both offending call sites appear in the message; the fresh-nonce
        # call site does not.
        assert "encrypt_row" in violation.message
        assert "encrypt_index" in violation.message
        assert "encrypt_fresh" not in violation.message
        assert violation.key.endswith(":nonce:b'fixed-nonce-0000'")
        assert violation.path == "src/nonce_reuse_pkg/app.py"

    def test_pass_disabled_without_crypto_policy(self):
        # clean_pkg has no crypto_policy section: the pass must not run.
        report = run_fixture("clean_pkg")
        assert not [
            v for v in report.violations if v.rule.startswith("crypto-")
        ]


class TestCryptoKeyDisplay:
    def test_flags_fstring_and_logging(self):
        report = run_fixture("key_log_pkg")
        assert report.exit_code == 1
        by_key = {v.key: v for v in report.violations}
        assert set(by_key) == {"f-string:key", ".info():key"}
        assert by_key["f-string:key"].function == "key_log_pkg.app.debug_banner"
        assert by_key[".info():key"].function == "key_log_pkg.app.startup"
        # The non-key f-string in safe_banner stays quiet.
        assert all("safe_banner" not in v.function for v in report.violations)

    def test_allowlist_prefix_silences(self, tmp_path):
        import json
        import shutil

        root = FIXTURES / "key_log_pkg"
        work = tmp_path / "key_log_pkg"
        shutil.copytree(root, work)
        spec = json.loads((work / "leakage_spec.json").read_text())
        spec["crypto_policy"]["key_display_allowed_in"] = ["key_log_pkg.app"]
        (work / "leakage_spec.json").write_text(json.dumps(spec))
        report = run_analysis(
            work / "src" / "key_log_pkg", "key_log_pkg",
            work / "leakage_spec.json",
        )
        assert report.exit_code == 0


class TestCryptoDetMisuse:
    def test_repo_spec_confines_det(self):
        spec = load_spec(
            Path(__file__).resolve().parents[1] / "leakage_spec.json"
        )
        assert spec.crypto_policy is not None
        assert "det_ciphertext" in spec.crypto_policy.det_taints
        assert spec.crypto_policy.det_allowed_in

    def test_flags_det_outside_allowed_prefixes(self, tmp_path):
        import json
        import shutil

        # Shrink the nonce fixture into a DET-misuse one: declare the
        # encrypt method a det source and allow it nowhere.
        root = FIXTURES / "nonce_reuse_pkg"
        work = tmp_path / "nonce_reuse_pkg"
        shutil.copytree(root, work)
        spec = json.loads((work / "leakage_spec.json").read_text())
        spec["taints"]["det_ciphertext"] = "deterministic ciphertext"
        spec["sources"].append(
            {
                "callable": "nonce_reuse_pkg.app.StreamCipher.encrypt",
                "taint": "det_ciphertext",
                "via": "return",
            }
        )
        spec["crypto_policy"]["det_taints"] = ["det_ciphertext"]
        spec["crypto_policy"]["det_allowed_in"] = ["nonce_reuse_pkg.allowed"]
        (work / "leakage_spec.json").write_text(json.dumps(spec))
        report = run_analysis(
            work / "src" / "nonce_reuse_pkg", "nonce_reuse_pkg",
            work / "leakage_spec.json",
        )
        det = [v for v in report.violations if v.rule == "crypto-det-misuse"]
        assert det
        assert all(
            v.key == "nonce_reuse_pkg.app.StreamCipher.encrypt" for v in det
        )


class TestSharedState:
    def test_flags_unguarded_writes_only(self):
        report = run_fixture("shared_state_pkg")
        assert report.exit_code == 1
        assert all(
            v.rule == "shared-state-unguarded" for v in report.violations
        )
        functions = sorted(v.function for v in report.violations)
        # Direct write and helper reached through the call graph are both
        # flagged; the lock-guarded write and the unreachable maintenance()
        # writer are not.
        assert functions == [
            "shared_state_pkg.server.Server.handle",
            "shared_state_pkg.state._record",
        ]
        assert all(
            v.key == "shared_state_pkg.state.CACHE" for v in report.violations
        )

    def test_pass_disabled_without_concurrency_section(self):
        report = run_fixture("clean_pkg")
        assert not [
            v for v in report.violations if v.rule == "shared-state-unguarded"
        ]


class TestFingerprints:
    def test_fingerprints_are_stable_identity_hashes(self):
        report1 = run_fixture("shared_state_pkg")
        report2 = run_fixture("shared_state_pkg")
        fp1 = sorted(v.fingerprint for v in report1.violations)
        fp2 = sorted(v.fingerprint for v in report2.violations)
        assert fp1 == fp2
        assert all(len(fp) == 64 for fp in fp1)

    def test_fingerprint_survives_line_drift(self, tmp_path):
        import shutil

        root = FIXTURES / "shared_state_pkg"
        work = tmp_path / "shared_state_pkg"
        shutil.copytree(root, work)
        before = run_analysis(
            work / "src" / "shared_state_pkg", "shared_state_pkg",
            work / "leakage_spec.json",
        )
        # Prepend comment lines: every finding's line number moves, but
        # fingerprints (rule + path + function + key) must not.
        app = work / "src" / "shared_state_pkg" / "server.py"
        app.write_text("# drift\n# drift\n# drift\n" + app.read_text())
        after = run_analysis(
            work / "src" / "shared_state_pkg", "shared_state_pkg",
            work / "leakage_spec.json",
        )
        assert sorted(v.fingerprint for v in before.violations) == sorted(
            v.fingerprint for v in after.violations
        )
        assert sorted(v.line for v in before.violations) != sorted(
            v.line for v in after.violations
        )

"""Tests for the resource-protocol (typestate) and lockset passes.

Fixture contract:

- ``protocol_bad_pkg`` seeds exactly one function per protocol rule;
- ``protocol_good_pkg`` holds the correct idioms (guarded pin, dirty
  release, both-path transaction, declared free, acquire-by-return
  wrapper) and must come back with zero violations and zero baseline
  entries;
- ``lockset_bad_pkg`` is lexically guarded everywhere (the old
  shared-state rule is silent by construction) but uses two different
  locks — the candidate-lockset intersection is empty;
- ``lockset_good_pkg`` exercises held-at-entry propagation (a helper
  written only under the caller's lock) and may-happen-in-parallel
  pruning (an unlocked writer declared as a serial entry role).
"""

import json
import shutil
import textwrap
from pathlib import Path

from repro.analysis import run_analysis
from repro.analysis.cli import main as cli_main
from repro.analysis.fingerprint import render_baseline

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]


def run_fixture(name, **kwargs):
    root = FIXTURES / name
    return run_analysis(
        root / "src" / name, name, root / "leakage_spec.json", **kwargs
    )


class TestProtocolPass:
    def test_bad_fixture_flags_every_rule(self):
        report = run_fixture("protocol_bad_pkg")
        assert report.exit_code == 1
        by_rule = {}
        for v in report.violations:
            by_rule.setdefault(v.rule, []).append(v)
        assert sorted(by_rule) == [
            "protocol-dirty-unpin",
            "protocol-exception-leak",
            "protocol-leak",
            "protocol-undeclared-free",
            "protocol-unguarded-mutation",
        ]
        def fn(rule):
            return {v.function.rsplit(".", 1)[1] for v in by_rule[rule]}

        assert fn("protocol-leak") == {"pin_leak_normal"}
        assert fn("protocol-exception-leak") == {
            "pin_leak_on_exception",
            "missing_abort",
        }
        assert fn("protocol-dirty-unpin") == {"dirty_without_mark"}
        assert fn("protocol-unguarded-mutation") == {"mutate_after_commit"}
        assert fn("protocol-undeclared-free") == {"undeclared_free"}

    def test_exception_leak_names_the_trigger(self):
        report = run_fixture("protocol_bad_pkg")
        leak = next(
            v
            for v in report.violations
            if v.function.endswith("pin_leak_on_exception")
        )
        assert "decode" in v_msg(leak)
        assert "propagates" in v_msg(leak)

    def test_txn_uncaught_paths_are_not_leaks(self):
        # leak_on_uncaught=false for txn: only the *caught-and-swallowed*
        # path in missing_abort flags, never the propagating one (the
        # engine rolls back on error, the caller never sees the txn).
        report = run_fixture("protocol_bad_pkg")
        txn_leaks = [
            v
            for v in report.violations
            if v.rule == "protocol-exception-leak" and v.key.startswith("txn|")
        ]
        assert len(txn_leaks) == 1
        assert "|caught|" in txn_leaks[0].key

    def test_good_fixture_is_clean_with_zero_baseline_entries(self):
        report = run_fixture("protocol_good_pkg")
        assert report.exit_code == 0
        assert report.violations == []
        baseline = json.loads(render_baseline(report.violations))
        assert baseline["fingerprints"] == {}

    def test_undeclared_free_cannot_be_baselined(self):
        report = run_fixture("protocol_bad_pkg")
        baseline = json.loads(render_baseline(report.violations))
        free = [
            v for v in report.violations if v.rule == "protocol-undeclared-free"
        ]
        assert free  # the finding exists ...
        recorded_rules = {
            entry["rule"] for entry in baseline["fingerprints"].values()
        }
        assert "protocol-undeclared-free" not in recorded_rules
        assert len(baseline["fingerprints"]) == len(report.violations) - len(
            free
        )  # ... but a baseline refuses to record it


class TestLocksetPass:
    def test_bad_fixture_two_locks_one_race(self):
        report = run_fixture("lockset_bad_pkg")
        assert report.exit_code == 1
        assert [v.rule for v in report.violations] == ["lockset-race"]
        (v,) = report.violations
        assert v.key == "lockset_bad_pkg.state.REGISTRY"

    def test_bad_fixture_quiet_for_lexical_rule(self):
        # Both writes sit inside `with lock_x:` blocks, so the subsumed
        # lexical shared-state rule must not double-report.
        report = run_fixture("lockset_bad_pkg")
        assert all(v.rule != "shared-state-unguarded" for v in report.violations)

    def test_good_fixture_no_false_positives(self):
        report = run_fixture("lockset_good_pkg")
        assert report.exit_code == 0
        assert report.violations == []


class TestFactsIncrementalCache:
    def _copy(self, tmp_path, name):
        work = tmp_path / name
        shutil.copytree(FIXTURES / name, work)
        return work

    def _run(self, work, name, **kwargs):
        return run_analysis(
            work / "src" / name, name, work / "leakage_spec.json", **kwargs
        )

    def test_one_module_edit_reextracts_only_its_facts(self, tmp_path):
        work = self._copy(tmp_path, "protocol_good_pkg")
        cache = tmp_path / "cache"
        cold = self._run(work, "protocol_good_pkg", cache_dir=cache)
        assert cold.cache_stats["mode"] == "cold"
        assert (
            cold.cache_stats["facts_reextracted"]
            == cold.cache_stats["functions_total"]
        )

        warm = self._run(work, "protocol_good_pkg", cache_dir=cache)
        assert warm.cache_stats["mode"] == "warm-full"
        assert warm.cache_stats["facts_reextracted"] == 0

        # Additive edit to ops.py (imports pool.py, nothing imports it):
        # only the ops cone re-extracts protocol summaries.
        ops = work / "src" / "protocol_good_pkg" / "ops.py"
        ops.write_text(
            ops.read_text()
            + textwrap.dedent(
                """

                def edit_probe(pool: Pool) -> None:
                    h = pool.acquire(6)
                    pool.release(h)
                """
            )
        )
        edited = self._run(work, "protocol_good_pkg", cache_dir=cache)
        stats = edited.cache_stats
        assert stats["mode"] == "warm-incremental"
        assert 0 < stats["facts_reextracted"] < stats["functions_total"]
        assert edited.violations == []

        # Byte-identical to a from-scratch run over the edited tree.
        fresh = self._run(work, "protocol_good_pkg")
        assert edited.to_json() == fresh.to_json()

    def test_edit_introducing_leak_is_caught_warm(self, tmp_path):
        work = self._copy(tmp_path, "protocol_good_pkg")
        cache = tmp_path / "cache"
        self._run(work, "protocol_good_pkg", cache_dir=cache)
        ops = work / "src" / "protocol_good_pkg" / "ops.py"
        ops.write_text(
            ops.read_text()
            + textwrap.dedent(
                """

                def leaky_probe(pool: Pool, flag: bool) -> None:
                    h = pool.acquire(7)
                    if flag:
                        pool.release(h)
                """
            )
        )
        warm = self._run(work, "protocol_good_pkg", cache_dir=cache)
        assert warm.cache_stats["mode"] == "warm-incremental"
        assert [v.rule for v in warm.violations] == ["protocol-leak"]
        assert warm.violations[0].function.endswith("leaky_probe")


class TestRealTree:
    def test_src_tree_is_protocol_and_lockset_clean(self):
        report = run_analysis(
            REPO_ROOT / "src" / "repro",
            "repro",
            REPO_ROOT / "leakage_spec.json",
        )
        gated = [
            v
            for v in report.violations
            if v.rule.startswith("protocol-") or v.rule == "lockset-race"
        ]
        assert gated == []


class TestExplainCli:
    def test_explain_known_rule(self, capsys):
        assert cli_main(["--explain", "protocol-dirty-unpin"]) == 0
        out = capsys.readouterr().out
        assert "protocol-dirty-unpin" in out
        assert "resource_protocols" in out
        assert "E2" in out

    def test_explain_preexisting_rule_has_metadata(self, capsys):
        assert cli_main(["--explain", "lockset-race"]) == 0
        out = capsys.readouterr().out
        assert "concurrency" in out
        assert "example:" in out

    def test_explain_unknown_rule_lists_known_ids(self, capsys):
        assert cli_main(["--explain", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "protocol-leak" in err


def v_msg(violation):
    return violation.message

"""Tests for report rendering, SARIF output, baselines, and the CLI."""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    default_registry,
    load_baseline,
    run_analysis,
    save_baseline,
    to_sarif,
)
from repro.analysis.cli import _find_default_root, main as lint_main
from repro.analysis.driver import ANALYZER_VERSION
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run_fixture(name):
    root = FIXTURES / name
    return run_analysis(root / "src" / name, name, root / "leakage_spec.json")


def _copy_fixture(tmp_path, name):
    work = tmp_path / name
    shutil.copytree(FIXTURES / name, work)
    return work


class TestReportJson:
    def test_to_dict_round_trips_through_json(self):
        report = run_fixture("clean_pkg")
        data = json.loads(report.to_json())
        assert data == report.to_dict()
        assert data["package"] == "clean_pkg"
        assert data["ok"] is True
        assert data["modules_analyzed"] >= 1
        assert data["functions_analyzed"] >= 1

    def test_documented_flag_and_experiments_aggregation(self):
        report = run_fixture("clean_pkg")
        flows = report.to_dict()["flows"]
        documented = [f for f in flows if f["taint"] == "plaintext"]
        assert documented
        for flow in documented:
            assert flow["documented"] is True
            assert flow["experiments"] == ["E1"]

    def test_undocumented_flow_has_no_experiments(self):
        report = run_fixture("bad_flow_pkg")
        data = report.to_dict()
        assert data["ok"] is False
        flow = next(f for f in data["flows"] if f["sink"] == "log")
        assert flow["documented"] is False
        assert flow["experiments"] == []
        rules = {v["rule"] for v in data["violations"]}
        assert "undocumented-flow" in rules

    def test_cache_stats_stay_out_of_to_dict(self):
        report = run_fixture("clean_pkg")
        report.cache_stats = {"mode": "cold"}
        assert "cache_stats" not in report.to_dict()

    def test_payload_round_trip_preserves_findings(self):
        report = run_fixture("bad_flow_pkg")
        clone = type(report).from_payload(report.spec, report.to_payload())
        assert clone.to_json() == report.to_json()


class TestSarif:
    def test_sarif_2_1_0_shape(self):
        report = run_fixture("shared_state_pkg")
        doc = to_sarif(report, ANALYZER_VERSION, registry=default_registry())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == ANALYZER_VERSION
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "shared-state-unguarded" in rule_ids
        assert rule_ids == sorted(rule_ids)

        results = run["results"]
        assert len(results) == len(report.violations)
        for res in results:
            assert res["ruleId"] in rule_ids
            assert res["level"] == "error"
            assert res["message"]["text"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith(".py")
            assert loc["region"]["startLine"] > 0
            fp = res["partialFingerprints"]["reproLintFingerprint/v1"]
            assert len(fp) == 64

    def test_sarif_marks_baselined_results_as_suppressed(self, tmp_path):
        work = _copy_fixture(tmp_path, "shared_state_pkg")
        report = run_analysis(
            work / "src" / "shared_state_pkg", "shared_state_pkg",
            work / "leakage_spec.json",
        )
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, report.violations)
        suppressed = run_analysis(
            work / "src" / "shared_state_pkg", "shared_state_pkg",
            work / "leakage_spec.json", baseline=baseline,
        )
        doc = to_sarif(suppressed, ANALYZER_VERSION)
        for res in doc["runs"][0]["results"]:
            assert res["level"] == "note"
            assert res["suppressions"][0]["kind"] == "external"

    def test_sarif_json_serializes(self):
        report = run_fixture("clean_pkg")
        from repro.analysis.sarif import to_sarif_json

        doc = json.loads(to_sarif_json(report, ANALYZER_VERSION))
        assert doc["runs"][0]["results"] == []


class TestBaseline:
    def test_baseline_suppresses_known_and_flags_new(self, tmp_path):
        work = _copy_fixture(tmp_path, "shared_state_pkg")

        def run(**kwargs):
            return run_analysis(
                work / "src" / "shared_state_pkg", "shared_state_pkg",
                work / "leakage_spec.json", **kwargs,
            )

        first = run()
        assert first.exit_code == 1
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, first.violations)

        # All current findings baselined: the run goes green.
        second = run(baseline=baseline)
        assert second.exit_code == 0
        assert len(second.violations) == len(first.violations)
        assert all(v.baselined for v in second.violations)

        # Introduce one NEW unguarded write; only its fingerprint is active.
        server = work / "src" / "shared_state_pkg" / "server.py"
        server.write_text(
            server.read_text()
            + "\n\ndef bulk_load(rows) -> None:\n"
            "    for key, value in rows:\n"
            "        CACHE[key] = value\n"
        )
        spec = json.loads((work / "leakage_spec.json").read_text())
        spec["concurrency"]["entry_points"].append(
            "shared_state_pkg.server.bulk_load"
        )
        (work / "leakage_spec.json").write_text(json.dumps(spec))

        third = run(baseline=baseline)
        active = third.active_violations
        assert len(active) == 1
        assert active[0].function == "shared_state_pkg.server.bulk_load"
        old_fps = set(load_baseline(baseline))
        assert active[0].fingerprint not in old_fps

    def test_key_hygiene_is_never_baselined(self, tmp_path):
        report = run_fixture("bad_key_pkg")
        key_viols = [v for v in report.violations if v.rule == "key-hygiene"]
        assert key_viols
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, report.violations)
        rerun = run_analysis(
            FIXTURES / "bad_key_pkg" / "src" / "bad_key_pkg", "bad_key_pkg",
            FIXTURES / "bad_key_pkg" / "leakage_spec.json", baseline=baseline,
        )
        assert any(
            not v.baselined for v in rerun.violations if v.rule == "key-hygiene"
        )
        assert rerun.exit_code == 1

    def test_malformed_baseline_is_an_input_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(AnalysisError):
            load_baseline(bad)


class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"repro-lint {ANALYZER_VERSION}" in out

    def test_jobs_one_runs_serial(self, tmp_path, capsys):
        work = _copy_fixture(tmp_path, "clean_pkg")
        rc = lint_main(
            ["--spec", str(work / "leakage_spec.json"), "--jobs", "1",
             "--no-cache"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out
        assert "cold run" in captured.err

    def test_negative_jobs_rejected(self, capsys):
        rc = lint_main(["--jobs", "-1"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_update_baseline_requires_baseline(self, capsys):
        rc = lint_main(["--update-baseline"])
        assert rc == 2
        assert "--baseline" in capsys.readouterr().err

    def test_update_baseline_then_green(self, tmp_path, capsys):
        work = _copy_fixture(tmp_path, "shared_state_pkg")
        spec = str(work / "leakage_spec.json")
        baseline = str(tmp_path / "baseline.json")
        assert lint_main(["--spec", spec, "--no-cache"]) == 1
        rc = lint_main(
            ["--spec", spec, "--no-cache", "--baseline", baseline,
             "--update-baseline"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = lint_main(
            ["--spec", spec, "--no-cache", "--baseline", baseline]
        )
        assert rc == 0
        assert "baselined (suppressed)" in capsys.readouterr().out

    def test_cli_populates_cache_dir_next_to_spec(self, tmp_path):
        work = _copy_fixture(tmp_path, "clean_pkg")
        rc = lint_main(["--spec", str(work / "leakage_spec.json")])
        assert rc == 0
        assert (work / ".repro-lint-cache").is_dir()

    def test_sarif_format(self, tmp_path, capsys):
        work = _copy_fixture(tmp_path, "clean_pkg")
        rc = lint_main(
            ["--spec", str(work / "leakage_spec.json"), "--no-cache",
             "--format", "sarif"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"


class TestFindDefaultRoot:
    def test_requires_both_spec_and_src(self, tmp_path, monkeypatch):
        # Spec alone is not enough...
        (tmp_path / "leakage_spec.json").write_text("{}")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        monkeypatch.chdir(nested)
        assert _find_default_root() is None
        # ...until a src/ tree sits beside it.
        (tmp_path / "src").mkdir()
        assert _find_default_root() == tmp_path

    def test_src_alone_is_not_enough(self, tmp_path, monkeypatch):
        (tmp_path / "src").mkdir()
        monkeypatch.chdir(tmp_path)
        assert _find_default_root() is None

"""Tests for the v4 volume-flow and durability-ordering passes.

Fixture contract:

- ``volume_pkg_bad`` persists a ``len()`` of tainted rows and a
  ``perf_counter`` duration into its telemetry store with no
  ``volume_surface`` declarations — both must flag (and a constant
  counter increment must stay silent);
- ``volume_pkg_good`` is the same code with both flows declared;
- ``durability_pkg_bad`` seeds exactly one function per durability rule;
- ``durability_pkg_good`` holds the correct WAL-ordering idioms
  (log-then-mutate, mutate-then-log, CLR-first rollback, flushed commit)
  plus one deliberately waived no-force commit.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main as cli_main
from repro.analysis.fingerprint import NEVER_BASELINED, render_baseline
from repro.analysis.passes import build_volume_surface, default_registry
from repro.analysis.sarif import to_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]


def run_fixture(name, **kwargs):
    root = FIXTURES / name
    return run_analysis(
        root / "src" / name, name, root / "leakage_spec.json", **kwargs
    )


def copy_fixture(tmp_path, name):
    work = tmp_path / name
    shutil.copytree(
        FIXTURES / name,
        work,
        ignore=shutil.ignore_patterns(".repro-lint-cache", "__pycache__"),
    )
    return work


def run_work(work, name, **kwargs):
    return run_analysis(
        work / "src" / name, name, work / "leakage_spec.json", **kwargs
    )


class TestVolumePass:
    def test_bad_fixture_flags_length_and_duration(self):
        report = run_fixture("volume_pkg_bad")
        assert report.exit_code == 1
        assert {v.rule for v in report.violations} == {"volume-undeclared-flow"}
        assert {v.key for v in report.violations} == {
            "volume.length->telemetry_store",
            "volume.duration->telemetry_store",
        }
        assert {v.function.rsplit(".", 1)[1] for v in report.violations} == {
            "scan_count",
            "timed_scan",
        }

    def test_constant_counter_stays_silent(self):
        report = run_fixture("volume_pkg_bad")
        assert not any(
            v.function.endswith("bump") for v in report.violations
        )

    def test_good_fixture_is_clean(self):
        report = run_fixture("volume_pkg_good")
        assert report.exit_code == 0
        assert report.violations == []
        assert not report.stale_documented

    def test_volume_findings_are_never_baselined(self, tmp_path):
        assert "volume-undeclared-flow" in NEVER_BASELINED
        report = run_fixture("volume_pkg_bad")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            render_baseline(report.violations), encoding="utf-8"
        )
        rerun = run_fixture("volume_pkg_bad", baseline=baseline)
        assert rerun.exit_code == 1

    def test_stale_declaration_warns(self, tmp_path):
        work = copy_fixture(tmp_path, "volume_pkg_good")
        spec_path = work / "leakage_spec.json"
        raw = json.loads(spec_path.read_text(encoding="utf-8"))
        raw["volume_surface"]["sinks"].append(
            {
                "callable": "volume_pkg_good.app.Telemetry.gauge",
                "sink": "gauge_store",
                "category": "telemetry",
                "params": ["value"],
            }
        )
        raw["volume_surface"]["declared"].append(
            {
                "taint": "volume.length",
                "sinks": ["gauge_store"],
                "source": "declared but never observed",
                "granularity": "n/a",
                "experiments": ["E14"],
            }
        )
        spec_path.write_text(json.dumps(raw, indent=2), encoding="utf-8")
        report = run_work(work, "volume_pkg_good")
        assert report.exit_code == 0
        assert (
            "volume.length -> gauge_store (volume_surface declaration)"
            in report.stale_documented
        )

    def test_volume_surface_artifact_lists_undeclared_flows(self):
        report = run_fixture("volume_pkg_bad")
        surface = build_volume_surface(report.spec, report.flows)
        entry = surface["sinks"]["telemetry_store"]
        assert {f["taint"] for f in entry["flows"]} == {
            "volume.length",
            "volume.duration",
        }
        assert all(f["source"] == "UNDECLARED" for f in entry["flows"])
        assert all(f["observed_at"] for f in entry["flows"])

    def test_declared_artifact_carries_granularity(self):
        report = run_fixture("volume_pkg_good")
        surface = build_volume_surface(report.spec, report.flows)
        entry = surface["sinks"]["telemetry_store"]
        assert all(f["source"] != "UNDECLARED" for f in entry["flows"])
        assert all(f["granularity"] for f in entry["flows"])
        assert all(f["observed_at"] for f in entry["flows"])


class TestDurabilityPass:
    def test_bad_fixture_flags_every_rule(self):
        report = run_fixture("durability_pkg_bad")
        assert report.exit_code == 1
        by_rule = {}
        for v in report.violations:
            by_rule.setdefault(v.rule, set()).add(
                v.function.rsplit(".", 1)[1]
            )
        assert by_rule == {
            "durability-unlogged-mutation": {"unlogged_branch"},
            "durability-unflushed-commit": {"unflushed_commit"},
            "durability-append-after-flush": {"late_append"},
        }

    def test_only_the_unlogged_path_is_flagged(self):
        # unlogged_branch has two insert sites; only the append-free fast
        # path flags.
        report = run_fixture("durability_pkg_bad")
        unlogged = [
            v
            for v in report.violations
            if v.rule == "durability-unlogged-mutation"
        ]
        assert len(unlogged) == 1

    def test_good_fixture_is_clean_with_waiver(self):
        report = run_fixture("durability_pkg_good")
        assert report.exit_code == 0
        assert report.violations == []


class TestRuleSurfaces:
    """--explain and SARIF must enumerate every registered rule (no
    hardcoded v3 lists anywhere)."""

    def test_explain_covers_every_registered_rule(self, capsys):
        for meta in default_registry().rules():
            assert cli_main(["--explain", meta.id]) == 0
            out = capsys.readouterr().out
            assert meta.id in out
            if meta.spec_section:
                assert meta.spec_section in out

    def test_sarif_rule_table_covers_every_registered_rule(self):
        report = run_fixture("volume_pkg_bad")
        sarif = to_sarif(report, "test")
        ids = {
            rule["id"]
            for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert ids == {meta.id for meta in default_registry().rules()}
        assert "volume-undeclared-flow" in ids
        assert "durability-unflushed-commit" in ids


class TestVolumeSpecCacheInvalidation:
    def test_volume_section_edit_invalidates_cached_results(self, tmp_path):
        """Editing only the volume_surface section must invalidate every
        cache layer: the spec hash keys both the tree payload and the
        per-module contributions (sink params and volume kinds come from
        the spec, so cached Contributions genuinely depend on it)."""
        work = copy_fixture(tmp_path, "volume_pkg_good")
        cache = tmp_path / "cache"
        cold = run_work(work, "volume_pkg_good", cache_dir=cache)
        assert cold.exit_code == 0
        warm = run_work(work, "volume_pkg_good", cache_dir=cache)
        assert warm.cache_stats["mode"] == "warm-full"
        spec_path = work / "leakage_spec.json"
        raw = json.loads(spec_path.read_text(encoding="utf-8"))
        raw["volume_surface"]["declared"] = [
            d
            for d in raw["volume_surface"]["declared"]
            if d["taint"] != "volume.duration"
        ]
        spec_path.write_text(json.dumps(raw, indent=2), encoding="utf-8")
        rerun = run_work(work, "volume_pkg_good", cache_dir=cache)
        assert rerun.cache_stats["mode"] != "warm-full"
        assert rerun.exit_code == 1
        assert any(
            v.key == "volume.duration->telemetry_store"
            for v in rerun.violations
        )
        fresh = run_work(work, "volume_pkg_good")
        assert rerun.to_json() == fresh.to_json()

    def test_warm_run_is_byte_identical_after_module_edit(self, tmp_path):
        work = copy_fixture(tmp_path, "volume_pkg_bad")
        cache = tmp_path / "cache"
        run_work(work, "volume_pkg_bad", cache_dir=cache)
        app = work / "src" / "volume_pkg_bad" / "app.py"
        app.write_text(
            app.read_text(encoding="utf-8") + "\n\nEXTRA = 1\n",
            encoding="utf-8",
        )
        warm = run_work(work, "volume_pkg_bad", cache_dir=cache)
        assert warm.cache_stats["mode"] in {
            "warm-incremental",
            "warm-fallback",
        }
        fresh = run_work(work, "volume_pkg_bad")
        assert warm.to_json() == fresh.to_json()


class TestRealTreeVolume:
    """Regression pins for the dogfood findings on the shipped tree."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis(
            REPO_ROOT / "src" / "repro",
            "repro",
            REPO_ROOT / "leakage_spec.json",
        )

    def test_dogfood_flows_are_observed_and_declared(self, report):
        pairs = {(f.taint, f.sink) for f in report.flows}
        declared = report.spec.volume_surface.declared_pairs()
        # The channels the paper's volume attacks read: query-log row
        # counts, obs counters, perf-schema aggregates, WAL record sizes.
        for sink in (
            "general_log",
            "slow_log",
            "obs_metrics",
            "performance_schema",
            "redo_log",
            "binlog",
        ):
            assert ("volume.length", sink) in pairs
            assert ("volume.length", sink) in declared

    def test_read_only_commit_waiver_is_recorded(self, report):
        assert report.exit_code == 0
        declared = report.spec.durability_protocol.declared
        assert any(
            d.rule == "durability-unflushed-commit"
            and d.function.endswith("StorageEngine.commit")
            and d.call == "append_commit"
            for d in declared
        )

"""Property tests for the attack algorithms' statistical claims."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import binomial_attack, frequency_analysis
from repro.attacks.lewi_wu_leakage import (
    bits_leaked_for_value,
    bits_leaked_vectorized,
)
from repro.workloads import zipf_frequencies


def _log_likelihood(observed_counts, model, assignment):
    """Multinomial log-likelihood of observations under an assignment."""
    total = sum(observed_counts.values())
    ll = 0.0
    for label, count in observed_counts.items():
        p = model[assignment[label]]
        ll += count * math.log(max(p, 1e-12))
    return ll


class TestFrequencyAnalysisMle:
    """Lacharité-Paterson: rank matching is a maximum-likelihood estimator."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(4, 12))
    def test_rank_matching_beats_random_assignments(self, seed, domain_size):
        rng = random.Random(seed)
        values = list(range(domain_size))
        model = zipf_frequencies(values, s=1.0)
        # Sample observations from the model under a random secret mapping.
        labels = [f"ct{i}" for i in range(domain_size)]
        secret = dict(zip(labels, rng.sample(values, domain_size)))
        observed = {
            label: sum(
                1
                for _ in range(300)
                if rng.random() < model[secret[label]]
            )
            + 1
            for label in labels
        }
        attack = frequency_analysis(observed, model)
        ll_attack = _log_likelihood(observed, model, attack.assignment)
        for _ in range(25):
            perm = rng.sample(values, domain_size)
            random_assignment = dict(zip(labels, perm))
            assert ll_attack >= _log_likelihood(observed, model, random_assignment) - 1e-9


class TestLeakageProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 2**16 - 1),
        st.lists(st.integers(0, 2**16 - 1), max_size=12),
    )
    def test_scalar_vectorized_agree(self, value, endpoints):
        import numpy as np

        scalar = bits_leaked_for_value(value, endpoints, bit_length=16)
        if endpoints:
            vector = bits_leaked_vectorized(
                np.array([value]), np.array(endpoints), bit_length=16
            )[0]
        else:
            vector = bits_leaked_vectorized(
                np.array([value]), np.array([], dtype=int), bit_length=16
            )[0]
        assert scalar == int(vector)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 255),
        st.lists(st.integers(0, 255), min_size=1, max_size=8),
        st.integers(0, 255),
    )
    def test_leakage_monotone_in_endpoints(self, value, endpoints, extra):
        base = bits_leaked_for_value(value, endpoints, bit_length=8)
        more = bits_leaked_for_value(value, endpoints + [extra], bit_length=8)
        assert more >= base

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 255), st.lists(st.integers(0, 255), max_size=8))
    def test_leakage_bounded_by_domain(self, value, endpoints):
        leaked = bits_leaked_for_value(value, endpoints, bit_length=8)
        assert 0 <= leaked <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255))
    def test_self_comparison_leaks_all(self, value):
        assert bits_leaked_for_value(value, [value], bit_length=8) == 8


class TestBinomialProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(16, 256))
    def test_estimates_monotone_in_rank(self, seed, n):
        rng = random.Random(seed)
        truth = {i: rng.randrange(1 << 16) for i in range(n)}
        order = sorted(truth, key=truth.get)
        result = binomial_attack(order, bit_length=16)
        estimates = [result.estimates[cid] for cid in order]
        assert estimates == sorted(estimates)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_more_data_tightens_estimates(self, seed):
        rng = random.Random(seed)

        def mean_error(n):
            truth = {i: rng.randrange(1 << 16) for i in range(n)}
            order = sorted(truth, key=truth.get)
            return binomial_attack(order, bit_length=16).mean_absolute_error(truth)

        # Statistical, but with a 16x size gap the ordering is essentially
        # certain; allow equality for degenerate draws.
        assert mean_error(512) <= mean_error(32) * 1.5

"""Tests for the inference attacks."""

import random

import pytest

from repro.attacks import (
    arx_frequency_attack,
    binomial_attack,
    bits_leaked_for_value,
    count_attack,
    frequency_analysis,
    leakage_trial,
    matching_attack,
    reconstruct_transcript,
    simulate_leakage,
    unique_count_fraction,
)
from repro.attacks.count_attack import document_recovery
from repro.errors import AttackError


class TestCountAttack:
    def test_unique_counts_recovered(self):
        aux = {"alpha": 10, "beta": 7, "gamma": 7, "delta": 3}
        observed = {"tok1": 10, "tok2": 3, "tok3": 7}
        result = count_attack(observed, aux)
        assert result.recovered == {"tok1": "alpha", "tok2": "delta"}
        assert result.candidates["tok3"] == ("beta", "gamma")

    def test_unique_count_fraction(self):
        aux = {"a": 1, "b": 2, "c": 2, "d": 5}
        assert unique_count_fraction(aux) == 0.5

    def test_recovery_rate(self):
        aux = {"alpha": 10, "beta": 3}
        observed = {"tok1": 10, "tok2": 3}
        result = count_attack(observed, aux)
        truth = {"tok1": "alpha", "tok2": "beta"}
        assert result.recovery_rate(truth) == 1.0

    def test_unknown_count_yields_nothing(self):
        result = count_attack({"tok": 999}, {"a": 1})
        assert result.recovered == {}
        assert result.candidates == {}

    def test_empty_inputs_rejected(self):
        with pytest.raises(AttackError):
            count_attack({}, {"a": 1})
        with pytest.raises(AttackError):
            count_attack({"t": 1}, {})
        with pytest.raises(AttackError):
            unique_count_fraction({})

    def test_document_recovery(self):
        recovered = {"tok1": "alpha", "tok2": "beta"}
        access = {"tok1": [1, 2], "tok2": [2]}
        contents = document_recovery(recovered, access)
        assert contents == {1: ["alpha"], 2: ["alpha", "beta"]}


class TestFrequencyAnalysis:
    def test_perfect_rank_match(self):
        observed = {"ct_a": 100, "ct_b": 50, "ct_c": 10}
        model = {"plain_a": 0.6, "plain_b": 0.3, "plain_c": 0.1}
        result = frequency_analysis(observed, model)
        assert result.assignment == {
            "ct_a": "plain_a",
            "ct_b": "plain_b",
            "ct_c": "plain_c",
        }

    def test_accuracy_metrics(self):
        observed = {"x": 10, "y": 5}
        model = {"p": 0.7, "q": 0.3}
        result = frequency_analysis(observed, model)
        truth = {"x": "p", "y": "q"}
        assert result.accuracy(truth) == 1.0
        assert result.weighted_accuracy(truth, observed) == 1.0

    def test_partial_accuracy(self):
        observed = {"x": 10, "y": 9}
        model = {"p": 0.5, "q": 0.5}
        result = frequency_analysis(observed, model)
        # Whatever the tie-break, at most one of two can be wrong vs a
        # swapped truth.
        truth = {"x": result.assignment["y"], "y": result.assignment["x"]}
        assert result.accuracy(truth) == 0.0

    def test_more_plaintexts_than_ciphertexts(self):
        observed = {"only": 5}
        model = {"a": 0.5, "b": 0.3, "c": 0.2}
        result = frequency_analysis(observed, model)
        assert result.assignment == {"only": "a"}

    def test_empty_rejected(self):
        with pytest.raises(AttackError):
            frequency_analysis({}, {"a": 1.0})


class TestLewiWuLeakage:
    def test_equality_leaks_everything(self):
        assert bits_leaked_for_value(7, [7], bit_length=8) == 8

    def test_single_comparison_prefix(self):
        # 0b10000000 vs 0b00000000 differ at bit 0: leaks exactly 1 bit.
        assert bits_leaked_for_value(0b10000000, [0], bit_length=8) == 1
        # Sharing 7 top bits leaks all 8 (7 prefix + the differing bit).
        assert bits_leaked_for_value(0b00000001, [0], bit_length=8) == 8

    def test_max_over_endpoints(self):
        value = 0b11110000
        shallow = 0b00000000  # diff at bit 0 -> 1 bit
        deep = 0b11110001     # diff at bit 7 -> 8 bits
        assert bits_leaked_for_value(value, [shallow], bit_length=8) == 1
        assert bits_leaked_for_value(value, [shallow, deep], bit_length=8) == 8

    def test_no_endpoints_no_leakage(self):
        assert bits_leaked_for_value(5, [], bit_length=8) == 0

    def test_trial_fraction_bounds(self):
        rng = random.Random(0)
        fraction = leakage_trial(rng, num_values=100, num_queries=5)
        assert 0.0 < fraction < 1.0

    def test_monotone_in_queries(self):
        s5 = simulate_leakage(num_values=300, num_queries=5, trials=10, seed=3)
        s50 = simulate_leakage(num_values=300, num_queries=50, trials=10, seed=3)
        assert s50.mean_fraction_leaked > s5.mean_fraction_leaked

    def test_paper_anchor_50_queries(self):
        # The paper's 50-query point: 25% of bits (8 bits per 32-bit value).
        s = simulate_leakage(num_values=500, num_queries=50, trials=20, seed=0)
        assert 0.22 <= s.mean_fraction_leaked <= 0.28

    def test_bad_args_rejected(self):
        with pytest.raises(AttackError):
            leakage_trial(random.Random(0), num_values=0, num_queries=1)


class TestBinomialAttack:
    def test_uniform_recovery_msbs(self):
        rng = random.Random(1)
        n = 1024
        truth = {i: rng.randrange(1 << 32) for i in range(n)}
        order = sorted(truth, key=truth.get)
        result = binomial_attack(order, bit_length=32)
        msbs = result.mean_correct_msbs(truth)
        # Rank pins ~log2(n) = 10 high bits, minus binomial noise.
        assert msbs > 5

    def test_estimates_in_domain(self):
        result = binomial_attack([0, 1, 2], bit_length=8)
        assert all(0 <= v < 256 for v in result.estimates.values())

    def test_custom_quantile_fn(self):
        result = binomial_attack([0, 1], bit_length=8, quantile_fn=lambda q: 100)
        assert set(result.estimates.values()) == {100}

    def test_mae_metric(self):
        truth = {0: 10, 1: 200}
        result = binomial_attack([0, 1], bit_length=8)
        assert result.mean_absolute_error(truth) >= 0

    def test_empty_rejected(self):
        with pytest.raises(AttackError):
            binomial_attack([])


class TestMatchingAttack:
    def test_frequency_only_matching(self):
        cipher_freqs = {"c1": 90, "c2": 9, "c3": 1}
        plain_freqs = {"p1": 0.9, "p2": 0.09, "p3": 0.01}
        result = matching_attack(cipher_freqs, plain_freqs)
        assert result.assignment == {"c1": "p1", "c2": "p2", "c3": "p3"}

    def test_hard_constraints_respected(self):
        cipher_freqs = {"c1": 50, "c2": 50}
        plain_freqs = {"p1": 0.5, "p2": 0.5}
        # Constraint: c1 may only be p2, c2 only p1.
        compatible = lambda c, p: (c, p) in {("c1", "p2"), ("c2", "p1")}
        result = matching_attack(cipher_freqs, plain_freqs, compatible)
        assert result.assignment == {"c1": "p2", "c2": "p1"}

    def test_insufficient_plaintexts_rejected(self):
        with pytest.raises(AttackError):
            matching_attack({"c1": 1, "c2": 1}, {"p1": 1.0})

    def test_fully_incompatible_label_unassigned(self):
        result = matching_attack(
            {"c1": 5}, {"p1": 1.0}, compatible=lambda c, p: False
        )
        assert "c1" not in result.assignment

    def test_accuracy(self):
        result = matching_attack({"c": 1}, {"p": 1.0})
        assert result.accuracy({"c": "p"}) == 1.0
        assert result.accuracy({"c": "other"}) == 0.0


class TestArxTranscript:
    def make_events(self, batches, table="arx_index", with_insert=()):
        """``batches``: list of key lists, one per transaction."""
        from repro.forensics.redo_undo import ModificationEvent

        events = []
        lsn = 0
        for txn_id, keys in enumerate(batches, start=1):
            if txn_id in with_insert:
                events.append(
                    ModificationEvent(
                        lsn=lsn, txn_id=txn_id, table=table, op="insert",
                        key=999, before=None, after=None,
                    )
                )
                lsn += 1
            for key in keys:
                events.append(
                    ModificationEvent(
                        lsn=lsn, txn_id=txn_id, table=table, op="update",
                        key=key, before=None, after=None,
                    )
                )
                lsn += 1
        return events

    def test_group_by_transaction(self):
        batches = [[1, 3, 4], [1, 2], [1, 3, 5, 6]]
        queries, root = reconstruct_transcript(self.make_events(batches))
        assert [q.node_ids for q in queries] == [(1, 3, 4), (1, 2), (1, 3, 5, 6)]
        assert root == 1  # present in every batch

    def test_insert_batches_excluded(self):
        batches = [[1, 3], [1, 7], [1, 2]]
        events = self.make_events(batches, with_insert={2})
        queries, _ = reconstruct_transcript(events)
        assert [q.node_ids for q in queries] == [(1, 3), (1, 2)]

    def test_other_tables_ignored(self):
        events = self.make_events([[1, 2]], table="unrelated")
        queries, root = reconstruct_transcript(events)  # default table
        assert queries == [] and root is None

    def test_empty_stream(self):
        queries, root = reconstruct_transcript([])
        assert queries == [] and root is None

    def test_frequency_attack_recovers_hot_nodes(self):
        # Node 10 visited in 9 queries, node 20 in 5, node 30 in 2.
        batches = (
            [[10, 20, 30]] * 2 + [[10, 20]] * 3 + [[10]] * 4
        )
        events = self.make_events(batches)
        model = {100: 0.6, 200: 0.3, 300: 0.1}
        result = arx_frequency_attack(events, model)
        assert result.assignment[10] == 100
        assert result.assignment[20] == 200
        assert result.assignment[30] == 300
        assert result.visit_counts[10] == 9
        assert result.inferred_root == 10

    def test_no_updates_rejected(self):
        with pytest.raises(AttackError):
            arx_frequency_attack([], {1: 1.0})

"""Tests for tools/bench_diff.py (a script, loaded by path — not a package)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_diff", REPO_ROOT / "tools" / "bench_diff.py"
)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


BASELINE = {
    "insert": {"ops_per_sec": 1000.0, "p50_us": 50.0, "p99_us": 200.0,
               "warm_ms": 12.0},
}


@pytest.fixture
def fake_baseline(monkeypatch):
    monkeypatch.setattr(
        bench_diff, "committed_json", lambda path, ref: json.loads(json.dumps(BASELINE))
    )


def write_bench(tmp_path, payload):
    path = tmp_path / "BENCH_fake.json"
    path.write_text(json.dumps(payload))
    return path


class TestDiffFile:
    def test_unchanged_record_passes(self, tmp_path, fake_baseline):
        path = write_bench(tmp_path, BASELINE)
        assert bench_diff.diff_file(path, "HEAD", 0.20, 0.60) == []

    def test_within_tolerance_passes(self, tmp_path, fake_baseline):
        fresh = {"insert": dict(BASELINE["insert"], ops_per_sec=1100.0)}
        path = write_bench(tmp_path, fresh)
        assert bench_diff.diff_file(path, "HEAD", 0.20, 0.60) == []

    def test_throughput_drift_fails(self, tmp_path, fake_baseline):
        fresh = {"insert": dict(BASELINE["insert"], ops_per_sec=500.0)}
        path = write_bench(tmp_path, fresh)
        problems = bench_diff.diff_file(path, "HEAD", 0.20, 0.60)
        assert len(problems) == 1
        assert "ops_per_sec drifted" in problems[0]

    def test_dropped_record_fails(self, tmp_path, fake_baseline):
        path = write_bench(tmp_path, {})
        problems = bench_diff.diff_file(path, "HEAD", 0.20, 0.60)
        assert problems == ["BENCH_fake.json:insert: missing from fresh run"]

    def test_dropped_key_fails(self, tmp_path, fake_baseline):
        # warm_ms is not one of the three drift-compared fields; dropping
        # it used to pass silently.
        fresh = {"insert": {k: v for k, v in BASELINE["insert"].items()
                            if k != "warm_ms"}}
        path = write_bench(tmp_path, fresh)
        problems = bench_diff.diff_file(path, "HEAD", 0.20, 0.60)
        assert problems == [
            "BENCH_fake.json:insert: key(s) dropped from fresh record: warm_ms"
        ]

    def test_new_key_in_fresh_record_passes(self, tmp_path, fake_baseline):
        fresh = {"insert": dict(BASELINE["insert"], extra_metric=1.0)}
        path = write_bench(tmp_path, fresh)
        assert bench_diff.diff_file(path, "HEAD", 0.20, 0.60) == []

    def test_new_record_passes_with_notice(self, tmp_path, fake_baseline, capsys):
        fresh = dict(BASELINE, scan={"ops_per_sec": 5.0})
        path = write_bench(tmp_path, fresh)
        assert bench_diff.diff_file(path, "HEAD", 0.20, 0.60) == []
        assert "new record" in capsys.readouterr().out

    def test_new_file_skipped(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench_diff, "committed_json", lambda path, ref: None)
        path = write_bench(tmp_path, BASELINE)
        assert bench_diff.diff_file(path, "HEAD", 0.20, 0.60) == []
        assert "skipping" in capsys.readouterr().out


class TestWrite:
    def test_fresh_values_win(self, tmp_path, fake_baseline):
        fresh = {"insert": dict(BASELINE["insert"], ops_per_sec=2000.0)}
        path = write_bench(tmp_path, fresh)
        bench_diff.write_file(path, "HEAD")
        data = json.loads(path.read_text())
        assert data["insert"]["ops_per_sec"] == 2000.0

    def test_committed_only_record_preserved(self, tmp_path, fake_baseline):
        # A partial run (e.g. only the scan suite on this machine) must
        # not delete the committed insert record.
        path = write_bench(tmp_path, {"scan": {"ops_per_sec": 5.0}})
        bench_diff.write_file(path, "HEAD")
        data = json.loads(path.read_text())
        assert data["scan"]["ops_per_sec"] == 5.0
        assert data["insert"] == BASELINE["insert"]

    def test_committed_only_key_preserved(self, tmp_path, fake_baseline):
        fresh = {"insert": {"ops_per_sec": 900.0}}
        path = write_bench(tmp_path, fresh)
        bench_diff.write_file(path, "HEAD")
        data = json.loads(path.read_text())
        assert data["insert"]["ops_per_sec"] == 900.0
        assert data["insert"]["warm_ms"] == 12.0

    def test_output_normalised(self, tmp_path, fake_baseline):
        path = write_bench(tmp_path, BASELINE)
        bench_diff.write_file(path, "HEAD")
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"

    def test_no_committed_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_diff, "committed_json", lambda path, ref: None)
        path = write_bench(tmp_path, BASELINE)
        bench_diff.write_file(path, "HEAD")
        assert json.loads(path.read_text()) == BASELINE

    def test_main_write_exits_zero_on_drift(self, tmp_path, fake_baseline, capsys):
        fresh = {"insert": dict(BASELINE["insert"], ops_per_sec=1.0)}
        path = write_bench(tmp_path, fresh)
        assert bench_diff.main(["--write", str(path)]) == 0
        assert "refreshed" in capsys.readouterr().out
        assert json.loads(path.read_text())["insert"]["ops_per_sec"] == 1.0


class TestMain:
    def test_exit_one_on_dropped_key(self, tmp_path, fake_baseline, capsys):
        fresh = {"insert": {k: v for k, v in BASELINE["insert"].items()
                            if k != "warm_ms"}}
        path = write_bench(tmp_path, fresh)
        assert bench_diff.main([str(path)]) == 1
        assert "dropped from fresh record" in capsys.readouterr().err

    def test_exit_zero_when_clean(self, tmp_path, fake_baseline, capsys):
        path = write_bench(tmp_path, BASELINE)
        assert bench_diff.main([str(path)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_real_committed_baselines_parse(self):
        # Sanity: the tool reads every committed BENCH file against HEAD
        # without crashing (drift itself is machine-dependent, so only
        # the record/key structure is asserted here — main() is not run).
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            fresh = json.loads(path.read_text())
            baseline = bench_diff.committed_json(path, "HEAD")
            if baseline is None:
                continue
            for record in fresh:
                assert isinstance(fresh[record], dict)

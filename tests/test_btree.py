"""Unit and property tests for the page-oriented B+ tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import BTree, BufferPool, Tablespace


def make_tree(max_entries=4, pool=None):
    space = Tablespace(1, "t")
    if pool is None:
        return BTree(space, max_entries=max_entries), space
    tree = BTree(
        space,
        max_entries=max_entries,
        on_touch=pool.touch,
    )
    return tree, space


class TestBasicOps:
    def test_insert_get(self):
        tree, _ = make_tree()
        tree.insert(5, b"five")
        payload, _ = tree.get(5)
        assert payload == b"five"

    def test_get_missing(self):
        tree, _ = make_tree()
        payload, path = tree.get(42)
        assert payload is None
        assert path.page_ids  # even a miss touches the root

    def test_duplicate_key_rejected(self):
        tree, _ = make_tree()
        tree.insert(1, b"a")
        with pytest.raises(StorageError):
            tree.insert(1, b"b")

    def test_update(self):
        tree, _ = make_tree()
        tree.insert(1, b"old")
        old, _ = tree.update(1, b"new")
        assert old == b"old"
        assert tree.get(1)[0] == b"new"

    def test_update_missing_rejected(self):
        tree, _ = make_tree()
        with pytest.raises(StorageError):
            tree.update(9, b"x")

    def test_delete(self):
        tree, _ = make_tree()
        tree.insert(1, b"x")
        old, _ = tree.delete(1)
        assert old == b"x"
        assert tree.get(1)[0] is None
        assert tree.size == 0

    def test_delete_missing_rejected(self):
        tree, _ = make_tree()
        with pytest.raises(StorageError):
            tree.delete(1)

    def test_size_tracking(self):
        tree, _ = make_tree()
        for i in range(10):
            tree.insert(i, bytes([i]))
        assert tree.size == 10
        tree.delete(3)
        assert tree.size == 9


class TestSplitsAndStructure:
    def test_splits_grow_height(self):
        tree, _ = make_tree(max_entries=4)
        assert tree.height == 1
        for i in range(50):
            tree.insert(i, b"v")
        assert tree.height >= 3

    def test_all_keys_retrievable_after_splits(self):
        tree, _ = make_tree(max_entries=4)
        keys = list(range(0, 200, 3))
        for k in keys:
            tree.insert(k, str(k).encode())
        for k in keys:
            assert tree.get(k)[0] == str(k).encode()

    def test_reverse_insertion_order(self):
        tree, _ = make_tree(max_entries=4)
        for k in reversed(range(100)):
            tree.insert(k, b"v")
        assert [k for k, _ in tree.scan()] == list(range(100))

    def test_scan_sorted(self):
        tree, _ = make_tree(max_entries=4)
        import random

        rng = random.Random(7)
        keys = rng.sample(range(1000), 300)
        for k in keys:
            tree.insert(k, b"v")
        scanned = [k for k, _ in tree.scan()]
        assert scanned == sorted(keys)

    def test_access_path_root_to_leaf(self):
        pool = BufferPool(capacity=1000)
        tree, _ = make_tree(max_entries=4, pool=pool)
        for i in range(100):
            tree.insert(i, b"v")
        _, path = tree.get(50)
        assert len(path.page_ids) == tree.height
        assert path.page_ids[0] == tree.root_page_id


class TestRange:
    def test_range_inclusive(self):
        tree, _ = make_tree(max_entries=4)
        for i in range(20):
            tree.insert(i, str(i).encode())
        results, _ = tree.range(5, 9)
        assert [k for k, _ in results] == [5, 6, 7, 8, 9]

    def test_range_open_low(self):
        tree, _ = make_tree(max_entries=4)
        for i in range(10):
            tree.insert(i, b"v")
        results, _ = tree.range(None, 3)
        assert [k for k, _ in results] == [0, 1, 2, 3]

    def test_range_open_high(self):
        tree, _ = make_tree(max_entries=4)
        for i in range(10):
            tree.insert(i, b"v")
        results, _ = tree.range(7, None)
        assert [k for k, _ in results] == [7, 8, 9]

    def test_range_empty_tree(self):
        tree, _ = make_tree()
        results, path = tree.range(1, 5)
        assert results == []
        assert path.page_ids

    def test_range_no_matches(self):
        tree, _ = make_tree()
        tree.insert(1, b"v")
        results, _ = tree.range(100, 200)
        assert results == []

    def test_range_touches_multiple_leaves(self):
        pool = BufferPool(capacity=1000)
        tree, _ = make_tree(max_entries=4, pool=pool)
        for i in range(100):
            tree.insert(i, b"v")
        _, path = tree.range(10, 60)
        # A 51-key scan over fanout-4 leaves must touch many pages.
        assert len(set(path.page_ids)) > 5


class TestBufferPoolIntegration:
    def test_touches_reported(self):
        pool = BufferPool(capacity=1000)
        tree, space = make_tree(max_entries=4, pool=pool)
        for i in range(50):
            tree.insert(i, b"v")
        before = pool.stats["hits"] + pool.stats["misses"]
        tree.get(25)
        after = pool.stats["hits"] + pool.stats["misses"]
        assert after - before == tree.height

    def test_scan_does_not_touch_pool(self):
        pool = BufferPool(capacity=1000)
        tree, _ = make_tree(max_entries=4, pool=pool)
        for i in range(50):
            tree.insert(i, b"v")
        before = pool.stats["hits"] + pool.stats["misses"]
        list(tree.scan())
        after = pool.stats["hits"] + pool.stats["misses"]
        assert after == before


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 10_000), min_size=1, max_size=150))
    def test_insert_then_get_all(self, keys):
        tree, _ = make_tree(max_entries=4)
        for k in keys:
            tree.insert(k, str(k).encode())
        for k in keys:
            assert tree.get(k)[0] == str(k).encode()
        assert [k for k, _ in tree.scan()] == sorted(keys)

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 1000), min_size=10, max_size=100),
        st.data(),
    )
    def test_delete_subset(self, keys, data):
        tree, _ = make_tree(max_entries=4)
        for k in keys:
            tree.insert(k, b"v")
        doomed = data.draw(
            st.sets(st.sampled_from(sorted(keys)), max_size=len(keys))
        )
        for k in doomed:
            tree.delete(k)
        survivors = keys - doomed
        assert [k for k, _ in tree.scan()] == sorted(survivors)
        for k in doomed:
            assert tree.get(k)[0] is None

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 500), min_size=5, max_size=80),
        st.integers(0, 500),
        st.integers(0, 500),
    )
    def test_range_matches_filter(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        tree, _ = make_tree(max_entries=4)
        for k in keys:
            tree.insert(k, b"v")
        results, _ = tree.range(low, high)
        assert [k for k, _ in results] == sorted(k for k in keys if low <= k <= high)


class TestMinKey:
    def test_min_key_empty(self):
        tree, _ = make_tree()
        assert tree.min_key() is None

    def test_min_key_basic(self):
        tree, _ = make_tree(max_entries=4)
        for k in (9, 3, 7, 5):
            tree.insert(k, b"v")
        assert tree.min_key() == 3

    def test_min_key_after_deleting_leftmost_leaf(self):
        tree, _ = make_tree(max_entries=4)
        for k in range(20):
            tree.insert(k, b"v")
        for k in range(10):
            tree.delete(k)
        assert tree.min_key() == 10


class TestEmptyNodeReclamation:
    """Regression: emptied leaves must be unlinked and freed, not kept as
    dead pages on scan paths (the old lazy-delete behaviour)."""

    def test_emptied_leaf_is_freed(self):
        tree, space = make_tree(max_entries=4)
        for k in range(20):
            tree.insert(k, b"v")
        before = space.num_pages
        for k in range(5, 10):
            tree.delete(k)
        assert space.num_pages < before
        assert [k for k, _ in tree.scan()] == [
            k for k in range(20) if not (5 <= k < 10)
        ]

    def test_delete_all_collapses_to_single_leaf(self):
        import random

        rng = random.Random(11)
        tree, space = make_tree(max_entries=4)
        keys = list(range(300))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, b"v")
        assert tree.height > 1
        rng.shuffle(keys)
        for k in keys:
            tree.delete(k)
        assert tree.size == 0
        assert tree.height == 1
        assert tree.min_key() is None
        # Exactly the (empty) root leaf survives.
        assert space.num_pages == 1
        # The tree remains fully usable after total reclamation.
        for k in range(50):
            tree.insert(k, b"y")
        assert [k for k, _ in tree.scan()] == list(range(50))

    def test_interleaved_churn_keeps_structure_consistent(self):
        import random

        rng = random.Random(23)
        tree, space = make_tree(max_entries=4)
        live = {}
        for _ in range(2000):
            if live and rng.random() < 0.5:
                k = rng.choice(list(live))
                old, _ = tree.delete(k)
                assert old == live.pop(k)
            else:
                k = rng.randrange(500)
                if k in live:
                    continue
                tree.insert(k, str(k).encode())
                live[k] = str(k).encode()
        assert sorted(live) == [k for k, _ in tree.scan()]
        # No page anywhere in the space is an empty non-root leaf.
        for page in space:
            if page.page_id != tree.root_page_id:
                assert page.num_records > 0

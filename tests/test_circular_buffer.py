"""Ring-buffer invariants: circular logs and the obs trace store.

Both families of bounded buffers share the same forensic property: the
*structured* view is bounded, but eviction destroys nothing by itself —
circular logs overwrite only when new bytes arrive, and the trace store
frees heap blocks without zeroing.
"""

import pytest

from repro.engine.redo_log import RedoLog, RedoRecord
from repro.engine.undo_log import UndoLog, UndoRecord
from repro.errors import LogError, ObsError
from repro.forensics import carve_spans
from repro.memory import SimulatedHeap
from repro.obs import SPAN_MAGIC, TraceStore


def _redo(i, table="t", image=b"x" * 10):
    return RedoRecord(txn_id=i, table=table, op="insert", key=i, after_image=image)


class TestCircularLog:
    def test_capacity_must_be_positive(self):
        for capacity in (0, -1):
            with pytest.raises(LogError):
                RedoLog(capacity_bytes=capacity)
            with pytest.raises(LogError):
                UndoLog(capacity_bytes=capacity)

    def test_oversized_record_rejected(self):
        log = RedoLog(capacity_bytes=8)
        with pytest.raises(LogError):
            log.log(_redo(1))

    def test_wraps_exactly_at_byte_capacity(self):
        record = _redo(1)
        size = len(record.to_bytes())
        log = RedoLog(capacity_bytes=size * 3)  # room for exactly 3 records
        for i in range(3):
            log.log(_redo(i))
        assert log.num_records == 3
        assert log.total_evicted == 0
        assert log.used_bytes == size * 3

        log.log(_redo(3))  # one byte over -> oldest goes
        assert log.num_records == 3
        assert log.total_evicted == 1
        assert log.used_bytes == size * 3
        assert [r.txn_id for r in log.records()] == [1, 2, 3]

    def test_lsn_strictly_increases_across_eviction(self):
        record = _redo(1)
        size = len(record.to_bytes())
        log = UndoLog(capacity_bytes=size * 2)
        lsns = [
            log.log(
                UndoRecord(
                    txn_id=i, table="t", op="insert", key=i, before_image=b""
                )
            )
            for i in range(6)
        ]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)
        assert log.oldest_lsn == lsns[-2]
        assert log.newest_lsn == lsns[-1]

    def test_raw_bytes_covers_only_retained_records(self):
        record = _redo(1)
        size = len(record.to_bytes())
        log = RedoLog(capacity_bytes=size * 2)
        for i in range(5):
            log.log(_redo(i))
        raw = log.raw_bytes()
        # lsn(8) + len(4) framing per record
        assert len(raw) == 2 * (8 + 4 + size)
        assert log.total_appended == 5
        assert log.total_evicted == 3


class TestTraceStoreRing:
    def test_capacity_must_be_positive(self):
        for capacity in (0, -3):
            with pytest.raises(ObsError):
                TraceStore(SimulatedHeap(), capacity)

    def test_wraps_exactly_at_slot_capacity(self):
        store = TraceStore(SimulatedHeap(), capacity=3)
        payloads = [SPAN_MAGIC + bytes([i]) * 8 for i in range(3)]
        for payload in payloads:
            store.append(payload)
        assert store.num_records == 3
        assert store.total_evicted == 0
        assert store.raw_records() == payloads

        extra = SPAN_MAGIC + b"\xff" * 8
        store.append(extra)
        assert store.num_records == 3
        assert store.total_evicted == 1
        assert store.raw_records() == payloads[1:] + [extra]

    def test_eviction_leaves_heap_residue(self):
        heap = SimulatedHeap()
        store = TraceStore(heap, capacity=1)
        first = SPAN_MAGIC + b"A" * 20
        second = SPAN_MAGIC + b"B" * 24  # different size: no slot reuse
        store.append(first)
        store.append(second)
        assert store.raw_records() == [second]
        arena = heap.snapshot()
        assert first in arena  # evicted but never zeroed
        assert second in arena

    def test_secure_delete_zeroes_evicted_slots(self):
        heap = SimulatedHeap(secure_delete=True)
        store = TraceStore(heap, capacity=1)
        first = SPAN_MAGIC + b"A" * 20
        store.append(first)
        store.append(SPAN_MAGIC + b"B" * 24)
        assert first not in heap.snapshot()

    def test_clear_empties_view_but_not_memory(self):
        heap = SimulatedHeap()
        store = TraceStore(heap, capacity=4)
        payload = SPAN_MAGIC + b"C" * 16
        store.append(payload)
        store.clear()
        assert store.num_records == 0
        assert store.raw_bytes() == b""
        assert payload in heap.snapshot()

    def test_carver_reads_residue_the_view_lost(self):
        heap = SimulatedHeap()
        store = TraceStore(heap, capacity=1)
        from repro.obs import SpanRecord

        for i in range(4):
            record = SpanRecord(
                trace_id=i + 1,
                span_id=1,
                parent_id=0,
                name="query",
                detail=f"digest-{i}",
            )
            # Vary the size so freed slots are not reused and residue stays.
            store.append(record.to_bytes() + b"\x00" * i)
        carved = carve_spans(heap.snapshot())
        assert {span.detail for span in carved} == {
            "digest-0",
            "digest-1",
            "digest-2",
            "digest-3",
        }
        assert store.num_records == 1

"""Deterministic concurrency harness: replay, fuzzing, byte-equivalence.

The tentpole gate for ``repro.concurrency``: every interleaving replays
exactly from its seed, a 500-interleaving fuzzer checks transaction
atomicity and MVCC hygiene under contention (failure messages print the
replay seed), and the 64-session E7/E13 stress test proves the scheduler
front end leaves *byte-identical* forensic artifacts to a serial run.
"""

from repro.server import ServerConfig
from repro.server.frontend import SchedulingPolicy

from tests.harness import (
    InterleavingDriver,
    artifact_fingerprint,
    e7_statements,
    e13_statements,
    round_robin_scripts,
    run_frontend,
    run_serial,
)

SETUP = ["CREATE TABLE t (id INT PRIMARY KEY, v INT)"]


def contended_scripts(num_sessions=4):
    """Each session inserts its own rows, then updates a shared row.

    The shared-row update is the *last* write before COMMIT, so a write
    conflict aborts the whole transaction: either all of a session's rows
    land, or none do.
    """
    scripts = []
    for i in range(num_sessions):
        a, b = 100 + 2 * i, 101 + 2 * i
        scripts.append([
            "BEGIN",
            f"INSERT INTO t (id, v) VALUES ({a}, {i})",
            f"INSERT INTO t (id, v) VALUES ({b}, {i})",
            f"UPDATE t SET v = {i} WHERE id = 0",
            "COMMIT",
        ])
    return scripts


def run_contended(seed):
    driver = InterleavingDriver(
        contended_scripts(),
        setup=SETUP + ["INSERT INTO t (id, v) VALUES (0, -1)"],
        seed=seed,
    )
    return driver.run()


def table_rows(server):
    session = server.connect("check")
    result = server.execute(session, "SELECT id, v FROM t ORDER BY id")
    server.disconnect(session)
    return {row[0]: row[1] for row in result.rows}


class TestDriverDeterminism:
    def test_same_seed_same_run(self):
        first = run_contended(seed=1234)
        second = run_contended(seed=1234)
        assert first.trace == second.trace
        assert first.errors == second.errors
        assert table_rows(first.server) == table_rows(second.server)

    def test_same_seed_same_artifacts(self):
        first = run_contended(seed=99)
        second = run_contended(seed=99)
        assert artifact_fingerprint(first.server) == artifact_fingerprint(
            second.server
        )

    def test_different_seeds_explore_different_interleavings(self):
        traces = {run_contended(seed=s).trace for s in range(8)}
        assert len(traces) > 1

    def test_describe_prints_the_seed(self):
        result = run_contended(seed=42)
        assert "seed=42" in result.describe()


class TestInterleavingFuzzer:
    """Satellite: 500 seeded interleavings, replay seed printed on failure."""

    def test_500_interleavings_preserve_atomicity(self):
        for seed in range(500):
            result = run_contended(seed=seed)
            rows = table_rows(result.server)
            errored = {idx for idx, _, _ in result.errors}
            for i in range(4):
                a, b = 100 + 2 * i, 101 + 2 * i
                if i in errored:
                    # Conflict aborted the txn: no partial rows survive.
                    assert a not in rows and b not in rows, result.describe()
                else:
                    assert rows.get(a) == i and rows.get(b) == i, (
                        result.describe()
                    )
            # The shared row holds a committed session's tag (or the
            # initial value if every contender lost).
            winners = {i for i in range(4) if i not in errored}
            assert rows[0] in winners or (not winners and rows[0] == -1), (
                result.describe()
            )
            # No dangling MVCC state: every txn committed or rolled back.
            assert result.server.engine.mvcc.active_txn_ids == (), (
                result.describe()
            )
            assert result.server.engine.mvcc_chain_stats() == (), (
                result.describe()
            )

    def test_errors_are_only_conflict_shaped(self):
        allowed = ("WriteConflictError", "ServerError")
        for seed in range(0, 500, 7):
            result = run_contended(seed=seed)
            for _, _, error in result.errors:
                assert error.startswith(allowed), result.describe()


class TestSerialEquivalence:
    def disjoint_scripts(self, num_sessions=4):
        """Commuting workload: sessions write disjoint keys in txns."""
        scripts = []
        for i in range(num_sessions):
            base = 10 * i
            scripts.append([
                "BEGIN",
                f"INSERT INTO t (id, v) VALUES ({base}, {i})",
                f"INSERT INTO t (id, v) VALUES ({base + 1}, {i})",
                f"UPDATE t SET v = {100 + i} WHERE id = {base}",
                "COMMIT",
            ])
        return scripts

    def test_any_interleaving_of_commuting_txns_is_serial(self):
        scripts = self.disjoint_scripts()
        serial = run_serial(scripts, setup=SETUP)
        expected = table_rows(serial)
        for seed in range(25):
            result = InterleavingDriver(scripts, setup=SETUP, seed=seed).run()
            assert result.errors == (), result.describe()
            assert table_rows(result.server) == expected, result.describe()


def stress_scripts():
    """The 64-session E7+E13 stress workload."""
    e7_setup, e7 = e7_statements()
    e13_setup, e13 = e13_statements()
    setup = e7_setup + e13_setup
    scripts = [
        a + b
        for a, b in zip(
            round_robin_scripts(e7, 64), round_robin_scripts(e13, 64)
        )
    ]
    return setup, scripts


STRESS_CONFIG = dict(num_shards=8, general_log_enabled=True, obs_enabled=True)


class TestStressByteEquivalence:
    """Tentpole gate: scheduler front end vs serial run, byte-for-byte."""

    def test_64_sessions_8_shards_fifo_equals_serial(self):
        setup, scripts = stress_scripts()
        serial = run_serial(scripts, setup=setup, config=ServerConfig(**STRESS_CONFIG))
        concurrent, frontend = run_frontend(
            scripts,
            setup=setup,
            config=ServerConfig(**STRESS_CONFIG),
            policy=SchedulingPolicy.FIFO,
            num_workers=8,
        )
        telemetry = frontend.queue_telemetry()
        assert telemetry["dispatched"] == sum(len(s) for s in scripts)
        assert telemetry["rejected"] == 0
        want = artifact_fingerprint(serial)
        got = artifact_fingerprint(concurrent)
        assert sorted(want) == sorted(got)
        mismatched = [name for name in want if want[name] != got[name]]
        assert mismatched == []

    def test_stress_run_is_reproducible(self):
        setup, scripts = stress_scripts()
        runs = [
            run_frontend(
                scripts, setup=setup, config=ServerConfig(**STRESS_CONFIG)
            )[0]
            for _ in range(2)
        ]
        assert artifact_fingerprint(runs[0]) == artifact_fingerprint(runs[1])

    def test_workload_statement_streams_are_deterministic(self):
        assert e7_statements() == e7_statements()
        assert e13_statements() == e13_statements()
        # Different seeds change the stream (the knob is real).
        assert e7_statements(seed=1) != e7_statements(seed=2)


class TestSchedulerQueueTelemetryArtifact:
    def test_fifo_dispatch_order_equals_arrival_order(self):
        scripts = [["SELECT id FROM t"] for _ in range(6)]
        _, frontend = run_frontend(scripts, setup=SETUP)
        order = [c.request.session_id for c in frontend.completed]
        arrivals = [c.request.seq for c in frontend.completed]
        assert arrivals == sorted(arrivals)
        assert order == sorted(order, key=lambda s: order.index(s))

    def test_queue_telemetry_counts(self):
        scripts = [["SELECT id FROM t", "SELECT v FROM t"] for _ in range(3)]
        _, frontend = run_frontend(scripts, setup=SETUP)
        telemetry = frontend.queue_telemetry()
        assert len(telemetry["arrivals"]) == 6
        # Arrival records carry (seq, session_id, arrival_ts).
        seqs = [seq for seq, _, _ in telemetry["arrivals"]]
        assert seqs == sorted(seqs)
        assert telemetry["dispatched"] == 6
        assert len(telemetry["depth_samples"]) >= 6

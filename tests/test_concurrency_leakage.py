"""Regression: the concurrency subsystem's leakage surfaces stay registered.

Satellite gate for the scheduler-queue / shard-log / MVCC-chain artifacts:
they must appear in the default registry walk, land in the Figure-1 access
matrix, survive the leakage-spec cross-check, and capture (only) under the
conditions their enabled predicates encode.
"""

from pathlib import Path

import pytest

from repro.analysis.registry_gate import registry_spec_problems
from repro.analysis.spec import load_spec
from repro.server import MySQLServer, ServerConfig
from repro.server.frontend import ServerFrontend
from repro.snapshot import AttackScenario, StateQuadrant, capture, default_registry

REPO_ROOT = Path(__file__).resolve().parent.parent
CONCURRENCY_ARTIFACTS = (
    "scheduler_queue",
    "shard_log_sizes",
    "mvcc_version_chains",
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def spec():
    return load_spec(REPO_ROOT / "leakage_spec.json")


class TestRegistryWalk:
    def test_concurrency_artifacts_registered(self, registry):
        for name in CONCURRENCY_ARTIFACTS:
            assert name in registry, name

    def test_scheduler_queue_metadata(self, registry):
        provider = registry.get("scheduler_queue")
        assert provider.backend == "mysql"
        assert provider.quadrant is StateQuadrant.VOLATILE_DB
        assert provider.artifact_class == "data_structures"
        assert provider.requires_escalation
        assert provider.enabled is not None
        assert provider.spec_sinks == ("scheduler_queue",)

    def test_shard_log_sizes_metadata(self, registry):
        provider = registry.get("shard_log_sizes")
        assert provider.quadrant is StateQuadrant.PERSISTENT_DB
        assert provider.artifact_class == "logs"
        assert not provider.requires_escalation
        assert provider.spec_sinks == ("shard_logs",)

    def test_mvcc_version_chains_metadata(self, registry):
        provider = registry.get("mvcc_version_chains")
        assert provider.quadrant is StateQuadrant.VOLATILE_DB
        assert provider.artifact_class == "data_structures"
        assert provider.requires_escalation
        assert provider.spec_sinks == ("mvcc_chains",)


class TestFigureOneMatrix:
    def test_classes_reachable_per_scenario(self, registry):
        matrix = registry.access_matrix()
        # Persistent shard logs are disk-theft surface; volatile scheduler
        # and MVCC structures are not.
        assert matrix[AttackScenario.DISK_THEFT]["logs"]
        assert not matrix[AttackScenario.DISK_THEFT]["data_structures"]
        # Full compromise reaches both.
        assert matrix[AttackScenario.FULL_COMPROMISE]["logs"]
        assert matrix[AttackScenario.FULL_COMPROMISE]["data_structures"]

    def test_unescalated_injection_withholds_volatile_structures(self, registry):
        plan = registry.capture_plan(
            "mysql", AttackScenario.SQL_INJECTION, escalated=False,
            full_state=True,
        )
        names = [name for name, _, _ in plan]
        assert "scheduler_queue" not in names
        assert "mvcc_version_chains" not in names
        escalated = registry.capture_plan(
            "mysql", AttackScenario.SQL_INJECTION, escalated=True,
            full_state=True,
        )
        names = [name for name, _, _ in escalated]
        assert "scheduler_queue" in names
        assert "mvcc_version_chains" in names


class TestLeakageSpecCrossCheck:
    def test_registry_matches_spec(self, registry, spec):
        assert registry_spec_problems(spec, registry) == []

    def test_spec_declares_the_new_sinks(self, spec):
        declared = {sink.sink for sink in spec.sinks}
        assert {"scheduler_queue", "shard_logs", "mvcc_chains"} <= declared

    def test_spec_documents_plaintext_flows_into_new_sinks(self, spec):
        pairs = spec.documented_pairs()
        for sink in ("scheduler_queue", "shard_logs", "mvcc_chains"):
            assert ("plaintext", sink) in pairs, sink
            # The ciphertext families reach the new sinks too — the whole
            # point of §4: "encrypted" does not mean "absent from state".
            assert ("ope_ciphertext", sink) in pairs, sink


class TestCaptureGating:
    def test_plain_server_omits_concurrency_artifacts(self):
        server = MySQLServer(ServerConfig(mvcc_enabled=False))
        snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
        for name in CONCURRENCY_ARTIFACTS:
            assert name not in snap.artifacts, name

    def test_frontend_enables_scheduler_queue(self):
        server = MySQLServer()
        frontend = ServerFrontend(server)
        session = frontend.open_session()
        frontend.submit(session, "CREATE TABLE t (id INT PRIMARY KEY)")
        frontend.drain()
        snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
        telemetry = snap.artifacts["scheduler_queue"]
        assert telemetry["dispatched"] == 1
        assert len(telemetry["arrivals"]) == 1

    def test_sharded_server_enables_shard_log_sizes(self):
        server = MySQLServer(ServerConfig(num_shards=4))
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(12):
            server.execute(session, f"INSERT INTO t (id, v) VALUES ({i}, {i})")
        snap = capture(server, AttackScenario.DISK_THEFT)
        stats = snap.artifacts["shard_log_sizes"]
        assert [s.shard for s in stats] == [0, 1, 2, 3]
        assert sum(s.rows for s in stats) == 12
        # Unsharded server: provider disabled, artifact absent.
        plain = MySQLServer()
        snap = capture(plain, AttackScenario.DISK_THEFT)
        assert "shard_log_sizes" not in snap.artifacts

    def test_mvcc_chains_capture_live_contention(self):
        server = MySQLServer()
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        server.execute(session, "BEGIN")
        server.execute(session, "UPDATE t SET v = 20 WHERE id = 1")
        snap = capture(server, AttackScenario.VM_SNAPSHOT, escalated=True)
        (stat,) = snap.artifacts["mvcc_version_chains"]
        assert (stat.table, stat.key) == ("t", 1)
        assert stat.uncommitted == 1
        server.execute(session, "COMMIT")
        snap = capture(server, AttackScenario.VM_SNAPSHOT, escalated=True)
        assert snap.artifacts["mvcc_version_chains"] == ()

"""Unit tests for ASHE and SPLASHE / enhanced SPLASHE."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ashe import AsheCipher
from repro.crypto.splashe import EnhancedSplasheEncoder, SplasheEncoder
from repro.errors import CryptoError

KEY = b"a" * 32


class TestAshe:
    def test_single_roundtrip(self):
        ashe = AsheCipher(KEY)
        ct = ashe.encrypt(42, row_id=1)
        assert ashe.decrypt(ct) == 42

    def test_aggregate_telescopes(self):
        ashe = AsheCipher(KEY)
        values = [5, 10, 15, 20]
        column = ashe.encrypt_column(values)
        total = ashe.aggregate(column)
        assert ashe.decrypt(total) == sum(values)

    def test_partial_range_aggregate(self):
        ashe = AsheCipher(KEY)
        column = ashe.encrypt_column([1, 2, 3, 4, 5])
        total = ashe.aggregate(column[1:4])  # rows 2..4
        assert ashe.decrypt(total) == 2 + 3 + 4

    def test_negative_values(self):
        ashe = AsheCipher(KEY)
        column = ashe.encrypt_column([-7, 3])
        assert ashe.decrypt(ashe.aggregate(column)) == -4

    def test_non_adjacent_rejected(self):
        ashe = AsheCipher(KEY)
        a = ashe.encrypt(1, row_id=1)
        c = ashe.encrypt(3, row_id=3)
        with pytest.raises(CryptoError):
            ashe.add(a, c)

    def test_row_id_zero_rejected(self):
        with pytest.raises(CryptoError):
            AsheCipher(KEY).encrypt(1, row_id=0)

    def test_empty_aggregate_rejected(self):
        with pytest.raises(CryptoError):
            AsheCipher(KEY).aggregate([])

    def test_bad_modulus_rejected(self):
        with pytest.raises(CryptoError):
            AsheCipher(KEY, modulus=1)

    def test_ciphertexts_look_unrelated(self):
        # Encryptions of identical values at different rows differ (masks).
        ashe = AsheCipher(KEY)
        cts = ashe.encrypt_column([9, 9, 9])
        assert len({ct.value for ct in cts}) == 3

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_column_sum_property(self, values):
        ashe = AsheCipher(KEY)
        column = ashe.encrypt_column(values)
        assert ashe.decrypt(ashe.aggregate(column)) == sum(values)


class TestSplashe:
    DOMAIN = [10, 20, 30]

    def test_count_query(self):
        enc = SplasheEncoder(KEY, self.DOMAIN)
        column_set = enc.encode_column([10, 20, 10, 30, 10])
        assert enc.count(column_set, 10) == 3
        assert enc.count(column_set, 20) == 1
        assert enc.count(column_set, 30) == 1

    def test_rewrite_names_distinct_columns(self):
        # The SPLASHE weakness: distinct plaintexts -> distinct column names
        # in the rewritten SQL -> distinct performance-schema digests.
        enc = SplasheEncoder(KEY, self.DOMAIN)
        q10 = enc.rewrite_count_query("t", "a", 10)
        q20 = enc.rewrite_count_query("t", "a", 20)
        assert q10 != q20
        assert "ashe_sum" in q10

    def test_unknown_value_rejected(self):
        enc = SplasheEncoder(KEY, self.DOMAIN)
        with pytest.raises(CryptoError):
            enc.column_for(99)

    def test_empty_domain_rejected(self):
        with pytest.raises(CryptoError):
            SplasheEncoder(KEY, [])

    def test_duplicate_domain_rejected(self):
        with pytest.raises(CryptoError):
            SplasheEncoder(KEY, [1, 1])

    def test_all_columns_same_length(self):
        enc = SplasheEncoder(KEY, self.DOMAIN)
        column_set = enc.encode_column([10, 20, 30, 10])
        lengths = {len(col) for col in column_set.columns.values()}
        assert lengths == {4}

    def test_empty_column(self):
        enc = SplasheEncoder(KEY, self.DOMAIN)
        column_set = enc.encode_column([])
        assert enc.count(column_set, 10) == 0


class TestEnhancedSplashe:
    def test_frequent_values_splayed(self):
        enc = EnhancedSplasheEncoder(KEY, frequent_values=[1, 2], pad_to=2)
        column_set = enc.encode_column([1, 1, 2, 3, 4])
        assert enc.count(column_set, 1) == 2
        assert enc.count(column_set, 2) == 1

    def test_infrequent_values_padded(self):
        enc = EnhancedSplasheEncoder(KEY, frequent_values=[1], pad_to=3)
        column_set = enc.encode_column([1, 5, 6])
        # 5 and 6 each appear once and get padded up to 3.
        assert enc.count(column_set, 5) == 3
        assert enc.count(column_set, 6) == 3
        assert column_set.padding_rows == 4

    def test_det_column_reveals_equality(self):
        # Enhanced SPLASHE's DET column leaks equality of infrequent values -
        # the per-row recovery the paper warns about.
        enc = EnhancedSplasheEncoder(KEY, frequent_values=[1], pad_to=0)
        column_set = enc.encode_column([1, 5, 5, 6])
        det = [ct for ct in column_set.det_column if ct is not None]
        assert det[0] == det[1]  # the two 5s
        assert det[0] != det[2]

    def test_rewrite_frequent_vs_infrequent(self):
        enc = EnhancedSplasheEncoder(KEY, frequent_values=[1], pad_to=0)
        assert "ashe_sum" in enc.rewrite_count_query("t", "a", 1)
        assert "det_col" in enc.rewrite_count_query("t", "a", 7)

    def test_duplicate_frequent_rejected(self):
        with pytest.raises(CryptoError):
            EnhancedSplasheEncoder(KEY, frequent_values=[1, 1])

    def test_no_det_column_error(self):
        enc = EnhancedSplasheEncoder(KEY, frequent_values=[1], pad_to=0)
        basic = SplasheEncoder(KEY, [1]).encode_column([1])
        with pytest.raises(CryptoError):
            enc.count(basic, 9)

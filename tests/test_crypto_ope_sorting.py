"""Tests for the OPE scheme and the Naveed-style sorting attack."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.sorting import sorting_attack
from repro.crypto.ope import OpeCipher
from repro.errors import AttackError, CryptoError
from repro.workloads import zipf_frequencies

KEY = b"ope-test-key-0123456789abcdef!!!"


class TestOpeCipher:
    def test_roundtrip(self):
        ope = OpeCipher(KEY, plaintext_bits=10)
        for value in (0, 1, 500, 1023):
            assert ope.decrypt(ope.encrypt(value)) == value

    def test_order_preserved(self):
        ope = OpeCipher(KEY, plaintext_bits=10)
        values = sorted(random.Random(0).sample(range(1024), 100))
        ciphertexts = [ope.encrypt(v) for v in values]
        assert ciphertexts == sorted(ciphertexts)
        assert len(set(ciphertexts)) == len(values)

    def test_deterministic_per_key(self):
        a = OpeCipher(KEY, plaintext_bits=8)
        b = OpeCipher(KEY, plaintext_bits=8)
        assert [a.encrypt(v) for v in range(10)] == [b.encrypt(v) for v in range(10)]

    def test_different_keys_differ(self):
        a = OpeCipher(KEY, plaintext_bits=8)
        b = OpeCipher(b"another-key-0123456789abcdef!!!!", plaintext_bits=8)
        outputs_a = [a.encrypt(v) for v in range(32)]
        outputs_b = [b.encrypt(v) for v in range(32)]
        assert outputs_a != outputs_b

    def test_domain_bounds(self):
        ope = OpeCipher(KEY, plaintext_bits=8)
        with pytest.raises(CryptoError):
            ope.encrypt(256)
        with pytest.raises(CryptoError):
            ope.encrypt(-1)

    def test_bad_params(self):
        with pytest.raises(CryptoError):
            OpeCipher(KEY, plaintext_bits=0)
        with pytest.raises(CryptoError):
            OpeCipher(KEY, plaintext_bits=40, expansion_bits=20)

    def test_decrypt_non_image_rejected(self):
        ope = OpeCipher(KEY, plaintext_bits=4, expansion_bits=8)
        images = {ope.encrypt(v) for v in range(16)}
        non_image = next(c for c in range(ope.ciphertext_domain) if c not in images)
        with pytest.raises(CryptoError):
            ope.decrypt(non_image)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
    def test_order_property(self, x, y):
        ope = OpeCipher(KEY, plaintext_bits=12)
        cx, cy = ope.encrypt(x), ope.encrypt(y)
        assert (x < y) == (cx < cy)
        assert (x == y) == (cx == cy)


class TestSortingAttack:
    def test_dense_column_total_recovery(self):
        """The headline Naveed result: dense columns fall to sorting alone."""
        ope = OpeCipher(KEY, plaintext_bits=8)
        domain = list(range(18, 66))
        rng = random.Random(1)
        plaintexts = domain * 3  # every value present
        rng.shuffle(plaintexts)
        ciphertexts = [ope.encrypt(v) for v in plaintexts]
        truth = {ope.encrypt(v): v for v in domain}
        result = sorting_attack(ciphertexts, domain)
        assert result.dense
        assert result.accuracy(truth) == 1.0

    def test_sparse_column_cumulative_recovery(self):
        ope = OpeCipher(KEY, plaintext_bits=8)
        domain = list(range(100))
        model = zipf_frequencies(domain, s=1.0)
        rng = random.Random(2)
        # Few enough draws that the Zipf tail stays absent (sparse column).
        plaintexts = rng.choices(list(model), weights=list(model.values()), k=300)
        ciphertexts = [ope.encrypt(v) for v in plaintexts]
        assert len(set(ciphertexts)) < len(domain)
        truth = {ope.encrypt(v): v for v in set(plaintexts)}
        result = sorting_attack(ciphertexts, domain, auxiliary=model)
        assert not result.dense
        # Row-weighted recovery far above random (1/|domain| = 1%): the
        # frequent values align exactly, sampling noise drifts the tail.
        rate = result.row_recovery_rate(ciphertexts, truth)
        assert rate >= 0.5

    def test_uniform_auxiliary_default(self):
        result = sorting_attack([10, 20, 30], domain=[1, 2, 3, 4, 5, 6])
        assert set(result.assignment) == {10, 20, 30}

    def test_too_many_distinct_rejected(self):
        with pytest.raises(AttackError):
            sorting_attack([1, 2, 3], domain=[1, 2])

    def test_empty_inputs_rejected(self):
        with pytest.raises(AttackError):
            sorting_attack([], domain=[1])
        with pytest.raises(AttackError):
            sorting_attack([1], domain=[])

    def test_zero_mass_model_rejected(self):
        with pytest.raises(AttackError):
            sorting_attack([5], domain=[1, 2], auxiliary={3: 1.0})

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dense_recovery_property(self, seed):
        rng = random.Random(seed)
        ope = OpeCipher(KEY, plaintext_bits=8)
        domain = sorted(rng.sample(range(256), 20))
        plaintexts = domain * 2
        rng.shuffle(plaintexts)
        ciphertexts = [ope.encrypt(v) for v in plaintexts]
        truth = {ope.encrypt(v): v for v in domain}
        result = sorting_attack(ciphertexts, domain)
        assert result.accuracy(truth) == 1.0

"""Unit and property tests for the Lewi-Wu ORE implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ore_lewi_wu import LewiWuOre, reference_compare
from repro.errors import CryptoError

KEY = b"o" * 32


def make_ore(bit_length=8, block_bits=1):
    return LewiWuOre(KEY, bit_length=bit_length, block_bits=block_bits)


class TestConstruction:
    def test_block_bits_must_divide(self):
        with pytest.raises(CryptoError):
            LewiWuOre(KEY, bit_length=32, block_bits=5)

    def test_bad_bit_length(self):
        with pytest.raises(CryptoError):
            LewiWuOre(KEY, bit_length=0)

    def test_domain_bounds_enforced(self):
        ore = make_ore(bit_length=8)
        with pytest.raises(CryptoError):
            ore.encrypt_left(256)
        with pytest.raises(CryptoError):
            ore.encrypt_right(-1)

    def test_blocks_of_msb_first(self):
        ore = make_ore(bit_length=8, block_bits=2)
        assert ore.blocks_of(0b11100100) == [3, 2, 1, 0]

    def test_right_ciphertext_size_grows_with_block_bits(self):
        small = LewiWuOre(KEY, bit_length=8, block_bits=1)
        big = LewiWuOre(KEY, bit_length=8, block_bits=4)
        assert big.right_ciphertext_size() > small.right_ciphertext_size()


class TestCompare:
    @pytest.mark.parametrize("x,y", [(0, 0), (0, 1), (1, 0), (5, 9), (255, 254), (128, 127)])
    def test_order_correct(self, x, y):
        ore = make_ore(bit_length=8)
        result = ore.compare(ore.encrypt_left(x), ore.encrypt_right(y))
        expected = 0 if x == y else (-1 if x < y else 1)
        assert result.order == expected

    def test_equal_values_no_diff_block(self):
        ore = make_ore(bit_length=8)
        result = ore.compare(ore.encrypt_left(42), ore.encrypt_right(42))
        assert result.order == 0
        assert result.first_diff_block is None

    def test_first_diff_block_is_prefix_length(self):
        ore = make_ore(bit_length=8, block_bits=1)
        # 0b10110000 vs 0b10111111 share the first 4 bits; differ at index 4.
        result = ore.compare(
            ore.encrypt_left(0b10110000), ore.encrypt_right(0b10111111)
        )
        assert result.first_diff_block == 4

    def test_block_count_mismatch_rejected(self):
        a = make_ore(bit_length=8)
        b = make_ore(bit_length=16)
        with pytest.raises(CryptoError):
            a.compare(a.encrypt_left(1), b.encrypt_right(1))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_reference_8bit(self, x, y):
        ore = make_ore(bit_length=8, block_bits=1)
        got = ore.compare(ore.encrypt_left(x), ore.encrypt_right(y))
        want = reference_compare(x, y, bit_length=8, block_bits=1)
        assert (got.order, got.first_diff_block) == (want.order, want.first_diff_block)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_matches_reference_16bit_blocks4(self, x, y):
        ore = make_ore(bit_length=16, block_bits=4)
        got = ore.compare(ore.encrypt_left(x), ore.encrypt_right(y))
        want = reference_compare(x, y, bit_length=16, block_bits=4)
        assert (got.order, got.first_diff_block) == (want.order, want.first_diff_block)

    def test_right_ciphertexts_randomized(self):
        # Right encryption uses fresh nonces: same plaintext, different cts.
        ore = make_ore(bit_length=8)
        a = ore.encrypt_right(7)
        b = ore.encrypt_right(7)
        assert a.nonce != b.nonce
        assert a.tables != b.tables

    def test_left_ciphertexts_deterministic(self):
        ore = make_ore(bit_length=8)
        assert ore.encrypt_left(7) == ore.encrypt_left(7)


class TestReferenceCompare:
    def test_equal(self):
        r = reference_compare(10, 10)
        assert r.order == 0 and r.first_diff_block is None

    def test_msb_difference(self):
        r = reference_compare(0, 2**31, bit_length=32)
        assert r.order == -1 and r.first_diff_block == 0

    def test_lsb_difference(self):
        r = reference_compare(2, 3, bit_length=32)
        assert r.order == -1 and r.first_diff_block == 31

    def test_block_bits_coarsens_leakage(self):
        fine = reference_compare(0b0001, 0b0000, bit_length=4, block_bits=1)
        coarse = reference_compare(0b0001, 0b0000, bit_length=4, block_bits=4)
        assert fine.first_diff_block == 3
        assert coarse.first_diff_block == 0

    def test_invalid_block_bits(self):
        with pytest.raises(CryptoError):
            reference_compare(1, 2, bit_length=8, block_bits=3)

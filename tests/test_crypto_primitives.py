"""Unit tests for the PRF / KDF / stream-cipher primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.primitives import (
    Prf,
    StreamCipher,
    constant_time_equal,
    derive_key,
    hkdf,
    keystream_permutation,
    mac,
    prf_int,
)
from repro.errors import CryptoError

KEY = b"0123456789abcdef0123456789abcdef"


class TestMac:
    def test_deterministic(self):
        assert mac(KEY, "a", 1) == mac(KEY, "a", 1)

    def test_distinct_inputs_distinct_outputs(self):
        assert mac(KEY, "a", 1) != mac(KEY, "a", 2)

    def test_type_tagging_prevents_confusion(self):
        # str "1" and int 1 and bytes b"1" must not collide.
        outputs = {mac(KEY, "1"), mac(KEY, 1), mac(KEY, b"1")}
        assert len(outputs) == 3

    def test_length_prefix_prevents_concat_ambiguity(self):
        assert mac(KEY, "ab", "c") != mac(KEY, "a", "bc")

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            mac(b"", "x")

    def test_negative_int_rejected(self):
        with pytest.raises(CryptoError):
            mac(KEY, -1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(CryptoError):
            mac(KEY, 3.14)


class TestPrf:
    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            Prf(b"short")

    def test_eval_int_range(self):
        prf = Prf(KEY)
        for i in range(100):
            assert 0 <= prf.eval_int(7, "x", i) < 7

    def test_eval_int_bad_modulus(self):
        with pytest.raises(CryptoError):
            Prf(KEY).eval_int(0, "x")

    def test_prf_int_helper_matches(self):
        assert prf_int(KEY, 100, "y") == Prf(KEY).eval_int(100, "y")


class TestKdf:
    def test_derive_key_label_separation(self):
        assert derive_key(KEY, "a") != derive_key(KEY, "b")
        assert derive_key(KEY, "a", 0) != derive_key(KEY, "a", 1)

    def test_hkdf_lengths(self):
        for length in (1, 31, 32, 33, 100):
            assert len(hkdf(KEY, "label", length)) == length

    def test_hkdf_prefix_consistency(self):
        assert hkdf(KEY, "l", 64)[:32] == hkdf(KEY, "l", 32)

    def test_hkdf_zero_length_rejected(self):
        with pytest.raises(CryptoError):
            hkdf(KEY, "l", 0)


class TestStreamCipher:
    def test_roundtrip(self):
        cipher = StreamCipher(KEY)
        ct = cipher.encrypt(b"nonce0", b"attack at dawn")
        assert cipher.decrypt(b"nonce0", ct) == b"attack at dawn"

    def test_different_nonces_differ(self):
        cipher = StreamCipher(KEY)
        pt = b"x" * 40
        assert cipher.encrypt(b"n1", pt) != cipher.encrypt(b"n2", pt)

    def test_empty_plaintext(self):
        cipher = StreamCipher(KEY)
        assert cipher.encrypt(b"n", b"") == b""

    def test_negative_length_rejected(self):
        with pytest.raises(CryptoError):
            StreamCipher(KEY).keystream(b"n", -1)

    @given(st.binary(max_size=300), st.binary(min_size=1, max_size=16))
    def test_roundtrip_property(self, plaintext, nonce):
        cipher = StreamCipher(KEY)
        assert cipher.decrypt(nonce, cipher.encrypt(nonce, plaintext)) == plaintext


class TestPermutation:
    def test_is_permutation(self):
        perm = keystream_permutation(KEY, "l", 16)
        assert sorted(perm) == list(range(16))

    def test_deterministic(self):
        assert keystream_permutation(KEY, "l", 8) == keystream_permutation(KEY, "l", 8)

    def test_label_separation(self):
        # With n=64 two independent permutations virtually never coincide.
        assert keystream_permutation(KEY, "a", 64) != keystream_permutation(KEY, "b", 64)

    def test_size_one(self):
        assert keystream_permutation(KEY, "l", 1) == [0]

    def test_bad_size_rejected(self):
        with pytest.raises(CryptoError):
            keystream_permutation(KEY, "l", 0)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not constant_time_equal(b"abc", b"abd")

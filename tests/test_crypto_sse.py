"""Unit tests for the searchable-encryption scheme."""

import pytest

from repro.crypto.sse import SseClient, SseIndex
from repro.errors import CryptoError

KEY = b"s" * 32


def build_index():
    client = SseClient(KEY)
    index = SseIndex()
    docs = {
        1: ("alice bob contract", ["alice", "bob", "contract"]),
        2: ("bob budget", ["bob", "budget"]),
        3: ("alice lunch", ["alice", "lunch"]),
        4: ("quarterly budget contract", ["quarterly", "budget", "contract"]),
    }
    for doc_id, (body, words) in docs.items():
        client.encrypt_document(index, doc_id, words, body)
    return client, index


class TestSse:
    def test_search_returns_matching_docs(self):
        client, index = build_index()
        assert client.search(index, "alice") == [1, 3]
        assert client.search(index, "budget") == [2, 4]
        assert client.search(index, "nosuchword") == []

    def test_token_is_all_the_server_needs(self):
        # The semantic-security break: a snapshot attacker holding just the
        # token can run the same search the server runs.
        client, index = build_index()
        token = client.token("contract")
        assert index.search(token) == [1, 4]

    def test_tokens_case_insensitive(self):
        client, _ = build_index()
        assert client.token("Alice") == client.token("alice")

    def test_token_deterministic_per_keyword(self):
        client, _ = build_index()
        assert client.token("bob") == client.token("bob")
        assert client.token("bob") != client.token("alice")

    def test_result_count(self):
        client, index = build_index()
        assert index.result_count(client.token("bob")) == 2

    def test_decrypt_document(self):
        client, index = build_index()
        assert client.decrypt_document(index, 2) == "bob budget"

    def test_bodies_are_rnd_encrypted(self):
        client = SseClient(KEY)
        index = SseIndex()
        client.encrypt_document(index, 1, ["x"], "same body")
        client.encrypt_document(index, 2, ["x"], "same body")
        assert index.ciphertext(1) != index.ciphertext(2)

    def test_tags_unlinkable_across_documents(self):
        # Without the token, the same keyword in two documents produces
        # different tags (tags are PRF(token, doc_id)).
        client = SseClient(KEY)
        token = client.token("alice")
        assert token.tag_for(1) != token.tag_for(2)

    def test_duplicate_doc_id_rejected(self):
        client, index = build_index()
        with pytest.raises(CryptoError):
            client.encrypt_document(index, 1, ["x"], "dup")

    def test_empty_keyword_rejected(self):
        client, _ = build_index()
        with pytest.raises(CryptoError):
            client.token("")

    def test_different_keys_cannot_cross_search(self):
        _, index = build_index()
        other = SseClient(b"t" * 32)
        assert index.search(other.token("alice")) == []

"""Unit tests for RND and DET encryption."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import DetCipher, RndCipher
from repro.errors import DecryptionError

KEY = b"k" * 32


class TestRndCipher:
    def test_roundtrip(self):
        cipher = RndCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"secret")) == b"secret"

    def test_semantic_security_shape(self):
        # Equal plaintexts produce distinct ciphertexts (fresh nonces).
        cipher = RndCipher(KEY)
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_tamper_detected(self):
        cipher = RndCipher(KEY)
        ct = bytearray(cipher.encrypt(b"secret"))
        ct[20] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(ct))

    def test_truncated_rejected(self):
        cipher = RndCipher(KEY)
        with pytest.raises(DecryptionError):
            cipher.decrypt(b"short")

    def test_wrong_key_rejected(self):
        ct = RndCipher(KEY).encrypt(b"secret")
        with pytest.raises(DecryptionError):
            RndCipher(b"x" * 32).decrypt(ct)

    def test_injected_nonce_source(self):
        fixed = RndCipher(KEY, rand=lambda n: b"\x00" * n)
        assert fixed.encrypt(b"p") == fixed.encrypt(b"p")

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, plaintext):
        cipher = RndCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


class TestDetCipher:
    def test_roundtrip(self):
        cipher = DetCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"value")) == b"value"

    def test_determinism_is_the_leak(self):
        # The defining DET property: equal plaintexts -> equal ciphertexts.
        cipher = DetCipher(KEY)
        assert cipher.encrypt(b"IN") == cipher.encrypt(b"IN")
        assert cipher.encrypt(b"IN") != cipher.encrypt(b"AZ")

    def test_histogram_preserved(self):
        # A DET-encrypted column preserves the plaintext histogram exactly -
        # the invariant the frequency-analysis attack relies on.
        cipher = DetCipher(KEY)
        column = [b"a", b"b", b"a", b"c", b"a", b"b"]
        encrypted = [cipher.encrypt(v) for v in column]
        from collections import Counter

        plain_hist = sorted(Counter(column).values())
        cipher_hist = sorted(Counter(encrypted).values())
        assert plain_hist == cipher_hist

    def test_tamper_detected(self):
        cipher = DetCipher(KEY)
        ct = bytearray(cipher.encrypt(b"value"))
        ct[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            cipher.decrypt(bytes(ct))

    def test_truncated_rejected(self):
        with pytest.raises(DecryptionError):
            DetCipher(KEY).decrypt(b"tiny")

    def test_key_separation_from_rnd(self):
        det = DetCipher(KEY)
        rnd = RndCipher(KEY)
        with pytest.raises(DecryptionError):
            det.decrypt(rnd.encrypt(b"x" * 40))

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, plaintext):
        cipher = DetCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

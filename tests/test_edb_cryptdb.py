"""Tests for the CryptDB-style onion proxy."""

import pytest

from repro.edb.cryptdb import ColumnSpec, CryptDbProxy
from repro.edb.onion import OnionLayer
from repro.errors import EDBError
from repro.server import MySQLServer
from repro.snapshot import AttackScenario, capture

KEY = b"cryptdb-test-key-0123456789abcd!"


@pytest.fixture
def server():
    return MySQLServer()


@pytest.fixture
def proxy(server):
    session = server.connect("proxy")
    proxy = CryptDbProxy(
        server,
        session,
        KEY,
        table="emp",
        columns=[ColumnSpec("dept", "eq"), ColumnSpec("notes", "search")],
    )
    proxy.insert({"dept": "radiology", "notes": "scan results pending"})
    proxy.insert({"dept": "oncology", "notes": "chemo schedule review"})
    proxy.insert({"dept": "radiology", "notes": "scan archive cleanup"})
    return proxy


class TestConstruction:
    def test_bad_kind_rejected(self):
        with pytest.raises(EDBError):
            ColumnSpec("x", "ope")

    def test_duplicate_columns_rejected(self, server):
        session = server.connect()
        with pytest.raises(EDBError):
            CryptDbProxy(
                server, session, KEY, "t",
                [ColumnSpec("a", "eq"), ColumnSpec("a", "eq")],
            )

    def test_empty_columns_rejected(self, server):
        with pytest.raises(EDBError):
            CryptDbProxy(server, server.connect(), KEY, "t", [])

    def test_short_key_rejected(self, server):
        with pytest.raises(EDBError):
            CryptDbProxy(server, server.connect(), b"x", "t", [ColumnSpec("a", "eq")])


class TestOnionLifecycle:
    def test_starts_at_rnd(self, proxy):
        assert proxy.layer_of("dept") is OnionLayer.RND

    def test_rnd_histogram_is_flat(self, proxy):
        hist = proxy.column_histogram("dept")
        assert all(count == 1 for count in hist.values())

    def test_peel_reveals_histogram(self, proxy):
        proxy.peel("dept")
        assert proxy.layer_of("dept") is OnionLayer.DET
        assert sorted(proxy.column_histogram("dept").values()) == [1, 2]

    def test_double_peel_rejected(self, proxy):
        proxy.peel("dept")
        with pytest.raises(EDBError):
            proxy.peel("dept")

    def test_peel_leaves_update_evidence(self, proxy):
        server = proxy._server
        before = server.engine.redo_log.total_appended
        rewritten = proxy.peel("dept")
        after = server.engine.redo_log.total_appended
        assert rewritten == 3
        assert after - before == 3  # one UPDATE per row in the redo log

    def test_peel_on_search_column_rejected(self, proxy):
        with pytest.raises(EDBError):
            proxy.peel("notes")


class TestQueries:
    def test_select_where_eq_peels_and_matches(self, proxy):
        pks = proxy.select_where_eq("dept", "radiology")
        assert sorted(pks) == [1, 3]
        assert proxy.layer_of("dept") is OnionLayer.DET

    def test_eq_after_peel_no_second_pass(self, proxy):
        proxy.select_where_eq("dept", "radiology")
        redo_before = proxy._server.engine.redo_log.total_appended
        proxy.select_where_eq("dept", "oncology")
        assert proxy._server.engine.redo_log.total_appended == redo_before

    def test_search(self, proxy):
        assert sorted(proxy.search("notes", "scan")) == [1, 3]
        assert proxy.search("notes", "chemo") == [2]
        assert proxy.search("notes", "absent") == []

    def test_search_on_eq_column_rejected(self, proxy):
        with pytest.raises(EDBError):
            proxy.search("dept", "x")

    def test_fetch_decrypted_roundtrip(self, proxy):
        values = proxy.fetch_decrypted("dept", [1, 2, 3])
        assert values == {1: "radiology", 2: "oncology", 3: "radiology"}

    def test_fetch_decrypted_after_peel(self, proxy):
        proxy.peel("dept")
        values = proxy.fetch_decrypted("dept", [2])
        assert values == {2: "oncology"}

    def test_insert_unknown_column_rejected(self, proxy):
        with pytest.raises(EDBError):
            proxy.insert({"salary": 100})


class TestSnapshotLeakage:
    def test_eq_token_lands_in_history(self, proxy):
        proxy.select_where_eq("dept", "radiology")
        snap = capture(proxy._server, AttackScenario.VM_SNAPSHOT)
        texts = [e.sql_text for e in snap.statements_history]
        # The DET ciphertext of 'radiology' is embedded in a WHERE clause.
        det_hex = proxy._det["dept"].encrypt(b"radiology").hex()
        assert any(det_hex in t for t in texts)

    def test_replayed_token_breaks_semantic_security(self, proxy):
        proxy.select_where_eq("dept", "radiology")
        det_hex = proxy._det["dept"].encrypt(b"radiology").hex()
        # The attacker replays the carved ciphertext with no keys at all.
        session = proxy._server.connect("attacker")
        result = proxy._server.execute(
            session,
            f"SELECT pk FROM {proxy.table} WHERE dept_onion = x'{det_hex}'",
        )
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_search_tag_lands_in_heap(self, proxy):
        proxy.search("notes", "chemo")
        snap = capture(proxy._server, AttackScenario.VM_SNAPSHOT)
        dump = snap.require_memory_dump()
        tag = proxy._tag("notes", "chemo")
        assert dump.count_locations(tag) >= 1

    def test_peel_burst_visible_in_binlog(self, proxy):
        binlog_before = proxy._server.engine.binlog.num_events
        proxy.peel("dept")
        events = proxy._server.engine.binlog.events[binlog_before:]
        updates = [e for e in events if e.statement.startswith("UPDATE emp")]
        assert len(updates) == 3

"""Tests for the encrypted-database layers."""

import pytest

from repro.edb import (
    ArxRangeEdb,
    AtRestEncryptedStore,
    OnionColumn,
    OnionLayer,
    OreRangeEdb,
    SearchableEdb,
    SeabedEdb,
)
from repro.errors import EDBError
from repro.server import MySQLServer
from repro.snapshot import AttackScenario, capture

KEY = b"edb-test-key-0123456789abcdef!!!"


@pytest.fixture
def server():
    return MySQLServer()


@pytest.fixture
def session(server):
    return server.connect("edb-client")


class TestAtRest:
    def test_disk_view_hides_contents(self, server, session):
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'topsecret')")
        store = AtRestEncryptedStore(server, KEY)
        view = store.disk_view()
        assert b"topsecret" not in view.encrypted_tablespaces["t"]

    def test_sizes_leak(self, server, session):
        server.execute(session, "CREATE TABLE small (id INT PRIMARY KEY)")
        server.execute(session, "CREATE TABLE big (id INT PRIMARY KEY, v TEXT)")
        server.execute(session, "INSERT INTO small (id) VALUES (1)")
        server.execute(
            session, f"INSERT INTO big (id, v) VALUES (1, '{'x' * 2000}')"
        )
        store = AtRestEncryptedStore(server, KEY)
        sizes = store.disk_view().object_sizes
        assert sizes["big"] > sizes["small"]

    def test_memory_access_recovers_key_and_data(self, server, session):
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'topsecret')")
        store = AtRestEncryptedStore(server, KEY)
        view = store.disk_view()
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        key = store.key_from_memory(snap.require_memory_dump().data)
        assert key == KEY
        plain = store.decrypt_tablespace(key, view.encrypted_tablespaces["t"])
        assert b"topsecret" in plain

    def test_short_key_rejected(self, server):
        with pytest.raises(EDBError):
            AtRestEncryptedStore(server, b"short")


class TestOnion:
    def test_rnd_layer_hides_equality(self):
        col = OnionColumn(KEY)
        col.insert(b"A")
        col.insert(b"A")
        hist = col.equality_histogram()
        assert all(count == 1 for count in hist.values())

    def test_peel_to_det_reveals_histogram(self):
        col = OnionColumn(KEY)
        for value in (b"A", b"A", b"B"):
            col.insert(value)
        col.peel()
        assert col.layer is OnionLayer.DET
        assert sorted(col.equality_histogram().values()) == [1, 2]

    def test_peel_to_plain(self):
        col = OnionColumn(KEY)
        col.insert(b"A")
        col.peel()
        col.peel()
        assert col.layer is OnionLayer.PLAIN
        assert col.ciphertexts == [b"A"]

    def test_over_peel_rejected(self):
        col = OnionColumn(KEY)
        col.peel()
        col.peel()
        with pytest.raises(EDBError):
            col.peel()

    def test_decrypt_all_at_any_layer(self):
        col = OnionColumn(KEY)
        col.insert(b"x")
        col.insert(b"y")
        assert col.decrypt_all() == [b"x", b"y"]
        col.peel()
        assert col.decrypt_all() == [b"x", b"y"]

    def test_insert_after_peel_stays_at_layer(self):
        col = OnionColumn(KEY)
        col.peel()
        col.insert(b"A")
        col.insert(b"A")
        assert sorted(col.equality_histogram().values()) == [2]


class TestSearchableEdb:
    def test_search_correctness(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        edb.insert_document(1, ["alpha", "beta"], "doc one")
        edb.insert_document(2, ["beta", "gamma"], "doc two")
        edb.insert_document(3, ["delta"], "doc three")
        assert edb.search("beta").doc_ids == [1, 2]
        assert edb.search("delta").doc_ids == [3]
        assert edb.search("missing").doc_ids == []

    def test_body_roundtrip(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        edb.insert_document(1, ["x"], "the secret body")
        assert edb.decrypt_body(1) == "the secret body"

    def test_missing_body_rejected(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        with pytest.raises(EDBError):
            edb.decrypt_body(404)

    def test_tag_replay_equals_search(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        edb.insert_document(1, ["kw"], "body")
        edb.insert_document(2, ["other"], "body2")
        result = edb.search("kw")
        assert edb.replay_tag(result.tag_hex) == result.doc_ids

    def test_tag_lands_in_artifacts(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        edb.insert_document(1, ["kw"], "body")
        result = edb.search("kw")
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        dump = snap.require_memory_dump()
        assert dump.count_locations(result.tag_hex) >= 1
        history_texts = [e.sql_text for e in snap.statements_history]
        assert any(result.tag_hex in t for t in history_texts)

    def test_empty_keyword_rejected(self, server, session):
        edb = SearchableEdb(server, session, KEY)
        with pytest.raises(EDBError):
            edb.token("")


class TestOreEdb:
    def test_range_query_correctness(self, server, session):
        edb = OreRangeEdb(server, session, KEY, bit_length=16)
        values = {1: 100, 2: 5000, 3: 40000, 4: 2}
        for row_id, value in values.items():
            edb.insert(row_id, value)
        record = edb.range_query(50, 10_000)
        assert set(record.matching_ids) == {1, 2}

    def test_empty_range_rejected(self, server, session):
        edb = OreRangeEdb(server, session, KEY, bit_length=16)
        with pytest.raises(EDBError):
            edb.range_query(10, 5)

    def test_tokens_in_statement_history(self, server, session):
        edb = OreRangeEdb(server, session, KEY, bit_length=16)
        edb.insert(1, 123)
        record = edb.range_query(100, 200)
        texts = [
            e.sql_text
            for e in server.perf_schema.events_statements_history(session.session_id)
        ]
        assert any(record.low_token_hex in t for t in texts)

    def test_stored_ciphertexts_parse(self, server, session):
        edb = OreRangeEdb(server, session, KEY, bit_length=16)
        edb.insert(7, 999)
        stored = edb.stored_ciphertexts()
        assert 7 in stored
        assert stored[7].num_blocks == 16


class TestSeabedEdb:
    def test_count_and_sum(self, server, session):
        edb = SeabedEdb(server, session, KEY, category_domain=[1, 2, 3])
        for category, metric in [(1, 10), (1, 20), (2, 5), (3, 1), (1, 4)]:
            edb.insert(join_key=category, metric=metric, category=category)
        assert edb.count_where_category(1) == 3
        assert edb.count_where_category(2) == 1
        assert edb.sum_metric() == 40

    def test_out_of_domain_rejected(self, server, session):
        from repro.errors import CryptoError

        edb = SeabedEdb(server, session, KEY, category_domain=[1])
        with pytest.raises(CryptoError):
            edb.insert(join_key=9, metric=1, category=9)

    def test_join_histogram_leaks_det(self, server, session):
        edb = SeabedEdb(server, session, KEY, category_domain=[1, 2])
        for category in [1, 1, 1, 2]:
            edb.insert(join_key=category, metric=0, category=category)
        hist = edb.join_histogram()
        assert sorted(hist.values()) == [1, 3]

    def test_digest_table_accumulates_per_value_histogram(self, server, session):
        edb = SeabedEdb(server, session, KEY, category_domain=[1, 2, 3])
        for category in [1, 2, 3]:
            edb.insert(join_key=category, metric=0, category=category)
        for _ in range(5):
            edb.count_where_category(1)
        for _ in range(2):
            edb.count_where_category(2)
        hist = server.perf_schema.digest_histogram()
        counts = sorted(
            count for text, count in hist.items() if "ASHE_SUM" in text
        )
        assert counts == [2, 5]

    def test_enhanced_mode_det_column(self, server, session):
        edb = SeabedEdb(
            server,
            session,
            KEY,
            category_domain=[1, 2, 99],
            enhanced=True,
            frequent_values=[1, 2],
        )
        for category in [1, 2, 99, 99]:
            edb.insert(join_key=category, metric=0, category=category)
        assert edb.count_where_category(99) == 2
        assert edb.count_where_category(1) == 1

    def test_enhanced_requires_frequent_values(self, server, session):
        with pytest.raises(EDBError):
            SeabedEdb(server, session, KEY, category_domain=[1], enhanced=True)


class TestArxEdb:
    def test_range_query_correctness(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        for value in [50, 20, 80, 10, 60, 95]:
            edb.insert(value)
        record = edb.range_query(15, 65)
        assert record.matched_values == (20, 50, 60)

    def test_duplicate_value_rejected(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        edb.insert(5)
        with pytest.raises(EDBError):
            edb.insert(5)

    def test_every_query_repairs_visited_nodes(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        for value in [50, 20, 80]:
            edb.insert(value)
        redo_before = server.engine.redo_log.total_appended
        record = edb.range_query(0, 100)
        redo_after = server.engine.redo_log.total_appended
        assert redo_after - redo_before == len(record.visited_node_ids)

    def test_repair_changes_ciphertext(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        edb.insert(42)
        before = server.execute(session, f"SELECT enc_value FROM {edb.table}").rows
        edb.range_query(0, 100)
        after = server.execute(session, f"SELECT enc_value FROM {edb.table}").rows
        assert before != after  # fresh encryption of the same value

    def test_values_sorted(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        for value in [9, 3, 7]:
            edb.insert(value)
        assert edb.values() == [3, 7, 9]

    def test_query_log_ground_truth(self, server, session):
        edb = ArxRangeEdb(server, session, KEY)
        for value in [1, 2, 3]:
            edb.insert(value)
        edb.range_query(1, 2)
        assert len(edb.query_log) == 1
        assert edb.query_log[0].matched_values == (1, 2)

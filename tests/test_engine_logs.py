"""Unit tests for LSN, circular logs, binlog, and query logs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Binlog,
    GeneralQueryLog,
    LsnCounter,
    QueryLogEntry,
    RedoLog,
    RedoRecord,
    SlowQueryLog,
    UndoLog,
    UndoRecord,
)
from repro.errors import LogError


class TestLsn:
    def test_monotone(self):
        lsn = LsnCounter()
        assert lsn.advance(10) == 0
        assert lsn.advance(5) == 10
        assert lsn.current == 15

    def test_negative_start_rejected(self):
        with pytest.raises(LogError):
            LsnCounter(-1)

    def test_zero_advance_rejected(self):
        with pytest.raises(LogError):
            LsnCounter().advance(0)


def make_redo(txn=1, table="t", op="insert", key=1, image=b"row"):
    return RedoRecord(txn_id=txn, table=table, op=op, key=key, after_image=image)


class TestRedoLog:
    def test_append_and_read(self):
        log = RedoLog()
        record = make_redo()
        lsn = log.log(record)
        assert lsn == 0
        assert log.records() == [record]

    def test_lsn_reflects_record_size(self):
        log = RedoLog()
        first = make_redo()
        log.log(first)
        second_lsn = log.log(make_redo(key=2))
        assert second_lsn == len(first.to_bytes())

    def test_circular_eviction(self):
        record = make_redo()
        size = len(record.to_bytes())
        log = RedoLog(capacity_bytes=size * 3)
        for key in range(10):
            log.log(make_redo(key=key))
        assert log.num_records == 3
        assert log.total_evicted == 7
        # The retained window is the most recent writes.
        assert [r.key for r in log.records()] == [7, 8, 9]

    def test_oversized_record_rejected(self):
        log = RedoLog(capacity_bytes=8)
        with pytest.raises(LogError):
            log.log(make_redo(image=b"x" * 100))

    def test_bad_op_rejected(self):
        with pytest.raises(LogError):
            RedoRecord(txn_id=1, table="t", op="upsert", key=1, after_image=b"")

    def test_serialization_roundtrip(self):
        record = make_redo(txn=7, table="customers", op="update", key=-3, image=b"abc")
        parsed, consumed = RedoRecord.from_bytes(record.to_bytes())
        assert parsed == record
        assert consumed == len(record.to_bytes())

    def test_raw_bytes_framing(self):
        log = RedoLog()
        log.log(make_redo())
        log.log(make_redo(key=2))
        raw = log.raw_bytes()
        # 12 framing bytes (lsn 8 + len 4) per record.
        assert len(raw) == log.used_bytes + 2 * 12

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 20), st.integers(50, 400))
    def test_capacity_invariant(self, n_records, capacity):
        log = RedoLog(capacity_bytes=max(capacity, len(make_redo().to_bytes())))
        for key in range(n_records):
            log.log(make_redo(key=key))
        assert log.used_bytes <= log.capacity_bytes


class TestUndoLog:
    def test_before_image_roundtrip(self):
        record = UndoRecord(
            txn_id=2, table="t", op="delete", key=5, before_image=b"old row"
        )
        parsed, _ = UndoRecord.from_bytes(record.to_bytes())
        assert parsed == record

    def test_shares_lsn_with_redo(self):
        lsn = LsnCounter()
        redo = RedoLog(lsn=lsn)
        undo = UndoLog(lsn=lsn)
        undo.log(UndoRecord(1, "t", "insert", 1, b""))
        second = redo.log(make_redo())
        assert second > 0  # the undo write consumed LSN space first


class TestBinlog:
    def test_disabled_by_default(self):
        log = Binlog()
        log.log(100, 1, "INSERT INTO t VALUES (1)", 50)
        assert log.num_events == 0

    def test_records_when_enabled(self):
        log = Binlog(enabled=True)
        log.log(100, 1, "INSERT INTO t (a) VALUES (1)", 50)
        event = log.events[0]
        assert event.timestamp == 100
        assert event.lsn == 50
        assert "INSERT" in event.statement

    def test_timestamps_must_be_monotone(self):
        log = Binlog(enabled=True)
        log.log(100, 1, "a", 1)
        with pytest.raises(LogError):
            log.log(99, 2, "b", 2)

    def test_never_purged_without_command(self):
        log = Binlog(enabled=True)
        for i in range(1000):
            log.log(100 + i, i, f"INSERT {i}", i)
        assert log.num_events == 1000

    def test_purge_before(self):
        log = Binlog(enabled=True)
        for i in range(10):
            log.log(100 + i, i, "stmt", i)
        dropped = log.purge_before(105)
        assert dropped == 5
        assert log.events[0].timestamp == 105

    def test_to_text_mysqlbinlog_format(self):
        log = Binlog(enabled=True)
        log.log(1483228800, 7, "INSERT INTO t (a) VALUES (1)", 42)
        text = log.to_text()
        assert "SET TIMESTAMP=1483228800;" in text
        assert "# at lsn 42" in text
        assert "Xid = 7" in text


class TestQueryLogs:
    def entry(self, duration=0.5, stmt="SELECT * FROM t"):
        return QueryLogEntry(
            timestamp=100,
            session_id=1,
            statement=stmt,
            duration=duration,
            rows_examined=10,
        )

    def test_general_log_disabled_by_default(self):
        log = GeneralQueryLog()
        log.log(self.entry())
        assert log.entries == []

    def test_general_log_records_everything(self):
        log = GeneralQueryLog(enabled=True)
        log.log(self.entry(duration=0.0001))
        assert len(log.entries) == 1
        assert "SELECT" in log.to_text()

    def test_slow_log_threshold(self):
        log = SlowQueryLog(enabled=True, long_query_time=1.0)
        log.log(self.entry(duration=0.5))
        log.log(self.entry(duration=1.5, stmt="SELECT slow FROM t"))
        assert len(log.entries) == 1
        assert "slow" in log.entries[0].statement

    def test_slow_log_text_has_metadata(self):
        log = SlowQueryLog(enabled=True, long_query_time=0.1)
        log.log(self.entry(duration=2.0))
        text = log.to_text()
        assert "Query_time: 2.000000" in text
        assert "Rows_examined: 10" in text

    def test_negative_threshold_rejected(self):
        with pytest.raises(LogError):
            SlowQueryLog(long_query_time=-1)

"""Integration tests for the storage engine: transactions, logs, rollback."""

import pytest

from repro.clock import SimClock
from repro.engine import StorageEngine
from repro.errors import EngineError, TransactionError
from repro.storage import decode_row, encode_row


def make_engine(**kwargs):
    engine = StorageEngine(clock=SimClock(), binlog_enabled=True, **kwargs)
    engine.register_table("t")
    return engine


def row_bytes(*values):
    return encode_row(tuple(values))


class TestTables:
    def test_register_and_lookup(self):
        engine = make_engine()
        assert engine.has_table("t")
        assert engine.table_names == ["t"]

    def test_duplicate_register_rejected(self):
        engine = make_engine()
        with pytest.raises(EngineError):
            engine.register_table("t")

    def test_unknown_table_rejected(self):
        engine = make_engine()
        with pytest.raises(EngineError):
            engine.get("nope", 1)


class TestWritePath:
    def test_insert_visible(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1, "a"))
        engine.commit(txn)
        payload, _ = engine.get("t", 1)
        assert decode_row(payload)[0] == (1, "a")

    def test_insert_writes_both_logs(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1, "a"))
        assert engine.redo_log.num_records == 1
        assert engine.undo_log.num_records == 1
        redo = engine.redo_log.records()[0]
        undo = engine.undo_log.records()[0]
        assert redo.after_image == row_bytes(1, "a")
        assert undo.before_image == b""

    def test_update_logs_before_and_after(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1, "old"))
        engine.update(txn, "t", 1, row_bytes(1, "new"))
        redo = engine.redo_log.records()[-1]
        undo = engine.undo_log.records()[-1]
        assert redo.after_image == row_bytes(1, "new")
        assert undo.before_image == row_bytes(1, "old")

    def test_delete_logs_before_image(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1, "x"))
        engine.delete(txn, "t", 1)
        undo = engine.undo_log.records()[-1]
        assert undo.op == "delete"
        assert undo.before_image == row_bytes(1, "x")
        assert engine.get("t", 1)[0] is None

    def test_commit_writes_binlog(self):
        engine = make_engine()
        txn = engine.begin()
        txn.record_statement("INSERT INTO t (a) VALUES (1)")
        engine.insert(txn, "t", 1, row_bytes(1))
        engine.commit(txn)
        assert engine.binlog.num_events == 1
        assert engine.binlog.events[0].statement.startswith("INSERT")

    def test_read_only_txn_skips_binlog(self):
        engine = make_engine()
        txn = engine.begin()
        txn.record_statement("SELECT 1")
        engine.commit(txn)
        assert engine.binlog.num_events == 0

    def test_binlog_timestamp_from_clock(self):
        clock = SimClock(start=5000)
        engine = StorageEngine(clock=clock, binlog_enabled=True)
        engine.register_table("t")
        txn = engine.begin()
        txn.record_statement("INSERT ...")
        engine.insert(txn, "t", 1, row_bytes(1))
        clock.advance(123)
        engine.commit(txn)
        assert engine.binlog.events[0].timestamp == 5123


class TestRollback:
    def test_rollback_insert(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1))
        engine.rollback(txn)
        assert engine.get("t", 1)[0] is None

    def test_rollback_update_restores(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, row_bytes(1, "original"))
        engine.commit(setup)
        txn = engine.begin()
        engine.update(txn, "t", 1, row_bytes(1, "changed"))
        engine.rollback(txn)
        payload, _ = engine.get("t", 1)
        assert decode_row(payload)[0] == (1, "original")

    def test_rollback_delete_restores(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, row_bytes(1, "keep"))
        engine.commit(setup)
        txn = engine.begin()
        engine.delete(txn, "t", 1)
        engine.rollback(txn)
        assert engine.get("t", 1)[0] is not None

    def test_rollback_multi_change_reverse_order(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1, "a"))
        engine.update(txn, "t", 1, row_bytes(1, "b"))
        engine.delete(txn, "t", 1)
        engine.rollback(txn)
        assert engine.get("t", 1)[0] is None

    def test_committed_txn_cannot_change(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, row_bytes(1))
        engine.commit(txn)
        with pytest.raises(TransactionError):
            engine.insert(txn, "t", 2, row_bytes(2))

    def test_txn_ids_increment(self):
        engine = make_engine()
        assert engine.begin().txn_id == 1
        assert engine.begin().txn_id == 2


class TestReadPath:
    def test_range_and_full_scan_touch_pool(self):
        engine = make_engine()
        txn = engine.begin()
        for i in range(50):
            engine.insert(txn, "t", i, row_bytes(i))
        engine.commit(txn)
        before = engine.buffer_pool.stats["hits"] + engine.buffer_pool.stats["misses"]
        engine.range("t", 10, 20)
        after = engine.buffer_pool.stats["hits"] + engine.buffer_pool.stats["misses"]
        assert after > before

    def test_scan_avoids_pool(self):
        engine = make_engine()
        txn = engine.begin()
        for i in range(10):
            engine.insert(txn, "t", i, row_bytes(i))
        engine.commit(txn)
        before = engine.buffer_pool.stats["hits"] + engine.buffer_pool.stats["misses"]
        rows = engine.scan("t")
        after = engine.buffer_pool.stats["hits"] + engine.buffer_pool.stats["misses"]
        assert len(rows) == 10
        assert after == before

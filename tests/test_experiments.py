"""Integration tests for the experiment protocols (scaled-down runs).

The benchmarks run each experiment at paper fidelity; these tests run the
same code paths at small scale and assert the qualitative claims hold.
"""


import repro.experiments as E
from repro.experiments.e08_lewi_wu import run_end_to_end_token_recovery


class TestE1Surface:
    def test_matrix_matches_paper(self):
        result = E.run_attack_surface()
        assert result.matches_paper

    def test_table_rendering(self):
        result = E.run_attack_surface()
        table = result.to_table()
        assert "disk_theft" in table
        assert "X" in table


class TestE2Retention:
    def test_linear_model_predicts_window(self):
        result = E.run_log_retention(num_writes=1200, capacity_bytes=50_000)
        assert result.prediction_error < 0.05

    def test_retention_scales_with_capacity(self):
        small = E.run_log_retention(num_writes=1200, capacity_bytes=30_000)
        large = E.run_log_retention(num_writes=1200, capacity_bytes=60_000)
        ratio = (
            large.measured_retention_seconds / small.measured_retention_seconds
        )
        assert 1.7 <= ratio <= 2.3

    def test_projected_days_order_of_magnitude(self):
        # Our records are fatter than InnoDB's (~36 B/write implied by the
        # paper), so the projected window is days, not weeks - same order.
        result = E.run_log_retention(num_writes=800, capacity_bytes=40_000)
        assert 1.0 <= result.projected_days_at_paper_capacity <= 16.0

    def test_window_contents_reconstructable(self):
        result = E.run_log_retention(num_writes=500, capacity_bytes=30_000)
        assert 0 < result.reconstructed_fraction <= 1.0


class TestE3Timing:
    def test_recovers_purged_timestamps(self):
        result = E.run_binlog_timing(num_writes=200, purged_fraction=0.5)
        # "Approximate timestamps" (paper): with +/-30% interval jitter the
        # extrapolation error stays within a handful of write intervals -
        # i.e. a few minutes' error over a multi-hour purged window.
        assert result.error_in_intervals < 10.0
        span = result.num_writes * result.mean_interval_seconds
        assert result.mean_abs_error_seconds / span < 0.05

    def test_more_jitter_more_error(self):
        calm = E.run_binlog_timing(num_writes=200, jitter=0.05, seed=1)
        wild = E.run_binlog_timing(num_writes=200, jitter=0.6, seed=1)
        assert wild.mean_abs_error_seconds >= calm.mean_abs_error_seconds


class TestE4BufferPool:
    def test_last_select_path_recovered(self):
        result = E.run_buffer_pool_paths(table_rows=600, num_selects=12)
        assert result.last_select_recovered

    def test_some_recent_paths_recovered(self):
        result = E.run_buffer_pool_paths(table_rows=600, num_selects=12)
        assert result.recent_recovered >= 1
        assert result.paths_inferred >= 1


class TestE5Diagnostics:
    def test_history_window_fully_recovered(self):
        result = E.run_diagnostic_tables(victim_statements=30, history_size=10)
        assert result.verbatim_rate_of_window == 1.0

    def test_digest_histogram_exact(self):
        result = E.run_diagnostic_tables(victim_statements=30)
        assert result.digest_histogram_exact

    def test_larger_history_recovers_more(self):
        small = E.run_diagnostic_tables(victim_statements=40, history_size=5)
        large = E.run_diagnostic_tables(victim_statements=40, history_size=20)
        assert large.verbatim_recovered > small.verbatim_recovered


class TestE6Residue:
    def test_reproduces_paper_at_small_scale(self):
        result = E.run_memory_residue(scale=0.01)
        assert result.column_variant.full_query_locations >= 3
        assert result.column_variant.marker_only_locations >= 3
        assert result.where_variant.full_query_locations >= 3
        assert result.where_variant.marker_only_locations >= 3
        assert result.reproduces_paper

    def test_secure_delete_ablation_reduces_residue(self):
        leaky = E.run_memory_residue(scale=0.01, seed=5)
        sealed = E.run_memory_residue(scale=0.01, secure_delete=True, seed=5)
        assert (
            sealed.column_variant.total_marker_locations
            <= leaky.column_variant.total_marker_locations
        )


class TestE7SseCount:
    def test_unique_count_searches_fully_recovered(self):
        result = E.run_sse_count_attack(
            num_documents=300, vocabulary_size=80, top_k=40, num_searches=15
        )
        # Most tokens survive in memory; some old history blocks get reused
        # by later same-size statements, which is realistic attrition.
        assert result.tokens_carved_from_memory >= 0.8 * result.tokens_observed
        if result.unique_count_searches:
            assert result.unique_count_recovery_rate == 1.0

    def test_partial_documents_recovered(self):
        result = E.run_sse_count_attack(
            num_documents=300, vocabulary_size=80, top_k=40, num_searches=15
        )
        assert result.documents_with_recovered_content > 0


class TestE8LewiWu:
    def test_sweep_monotone_and_near_paper(self):
        result = E.run_lewi_wu_sweep(
            num_values=500, query_counts=(5, 25, 50), trials=30
        )
        assert result.monotone
        rows = result.rows()
        # 50-query anchor: the paper's 25% (8 bits of 32).
        anchor = [r for r in rows if r[0] == 50][0]
        assert 0.22 <= anchor[1] <= 0.28

    def test_end_to_end_token_pipeline(self):
        result = run_end_to_end_token_recovery()
        assert result.tokens_carved == 2 * result.queries_issued
        assert result.mean_bits_leaked_per_value > 0


class TestE9Seabed:
    def test_histogram_exact_and_recovery(self):
        result = E.run_seabed_splashe(num_queries=800)
        assert result.histogram_exact
        assert result.weighted_recovery_rate >= 0.5

    def test_noise_ablation_degrades(self):
        clean = E.run_seabed_splashe(num_queries=800, model_noise=0.0)
        # Rank matching is robust to mild noise, so compare to heavy noise.
        noisy = E.run_seabed_splashe(num_queries=800, model_noise=5.0, seed=3)
        assert noisy.weighted_recovery_rate <= clean.weighted_recovery_rate + 1e-9


class TestE10Arx:
    def test_transcript_fully_reconstructed(self):
        result = E.run_arx_transcript(num_values=15, num_queries=25)
        assert result.queries_reconstructed == 25
        assert result.transcript_set_accuracy == 1.0
        assert result.root_identified

    def test_ancestry_inference(self):
        result = E.run_arx_transcript(num_values=15, num_queries=40)
        assert result.ancestry_precision >= 0.8
        assert result.ancestry_recall >= 0.5

    def test_value_recovery_beats_random(self):
        result = E.run_arx_transcript(num_values=15, num_queries=40)
        # Random rank assignment has expected normalized error ~1/3.
        assert result.mean_rank_error < 0.34


class TestE11OreAux:
    def test_recovery_with_good_model(self):
        result = E.run_binomial_matching(num_rows=1500)
        assert result.matching_weighted_recovery_rate >= 0.5
        assert result.binomial_mean_correct_msbs >= 5.0

    def test_more_data_helps(self):
        small = E.run_binomial_matching(num_rows=300, seed=2)
        large = E.run_binomial_matching(num_rows=3000, seed=2)
        assert (
            large.matching_weighted_recovery_rate
            >= small.matching_weighted_recovery_rate
        )

"""End-to-end smoke run of every experiment module (E1–E13).

Each entry point runs at a reduced scale under one fixed seed and must
return a populated result object. This guards the full pipeline of every
experiment — workload, server, snapshot, attack — against wiring
regressions that the unit tests (which exercise components in isolation)
would miss.
"""

import dataclasses

import pytest

from repro.experiments.e01_surface import run_attack_surface
from repro.experiments.e02_retention import run_log_retention
from repro.experiments.e03_timing import run_binlog_timing
from repro.experiments.e03b_mongo_timing import run_mongo_timing
from repro.experiments.e04_bufferpool import run_buffer_pool_paths
from repro.experiments.e04b_slow_log import run_slow_log_inference
from repro.experiments.e05_diagnostics import run_diagnostic_tables
from repro.experiments.e05b_adaptive_hash import run_adaptive_hash_leak
from repro.experiments.e06_residue import run_memory_residue
from repro.experiments.e07_sse_count import run_sse_count_attack
from repro.experiments.e08_lewi_wu import (
    run_end_to_end_token_recovery,
    run_lewi_wu_sweep,
)
from repro.experiments.e09_seabed import run_seabed_splashe
from repro.experiments.e09b_seabed_spark import run_seabed_on_spark
from repro.experiments.e10_arx import run_arx_transcript
from repro.experiments.e11_ore_aux import run_binomial_matching
from repro.experiments.e13_ope import run_ope_sorting

SEED = 7

#: (experiment id, entry point, reduced-scale kwargs). Scales are chosen so
#: the whole battery stays fast while every pipeline stage still executes.
EXPERIMENTS = [
    ("e01", run_attack_surface, {}),
    ("e02", run_log_retention, {"num_writes": 500, "capacity_bytes": 30_000}),
    ("e03", run_binlog_timing, {"num_writes": 60, "seed": SEED}),
    ("e03b", run_mongo_timing, {"num_hours": 3, "seed": SEED}),
    (
        "e04",
        run_buffer_pool_paths,
        {"table_rows": 300, "num_selects": 5, "seed": SEED},
    ),
    (
        "e04b",
        run_slow_log_inference,
        {
            "table_rows": 300,
            "oltp_queries": 30,
            "analytic_queries": 3,
            "seed": SEED,
        },
    ),
    ("e05", run_diagnostic_tables, {"victim_statements": 10, "seed": SEED}),
    (
        "e05b",
        run_adaptive_hash_leak,
        {"num_keys": 20, "num_lookups": 300, "seed": SEED},
    ),
    ("e06", run_memory_residue, {"scale": 0.02, "seed": SEED}),
    (
        "e07",
        run_sse_count_attack,
        {
            "num_documents": 60,
            "vocabulary_size": 40,
            "top_k": 20,
            "num_searches": 8,
            "seed": SEED,
        },
    ),
    (
        "e08",
        run_lewi_wu_sweep,
        {"num_values": 500, "trials": 50, "query_counts": (5,), "seed": SEED},
    ),
    (
        "e08-tokens",
        run_end_to_end_token_recovery,
        {"num_values": 8, "num_queries": 2, "seed": SEED},
    ),
    (
        "e09",
        run_seabed_splashe,
        {"domain_size": 10, "num_queries": 80, "seed": SEED},
    ),
    (
        "e09b",
        run_seabed_on_spark,
        {"domain_size": 8, "num_queries": 60, "seed": SEED},
    ),
    ("e10", run_arx_transcript, {"num_values": 10, "num_queries": 10, "seed": SEED}),
    ("e11", run_binomial_matching, {"num_rows": 300, "seed": SEED}),
    ("e13", run_ope_sorting, {"num_rows": 200, "seed": SEED}),
]


@pytest.mark.parametrize(
    "run, kwargs",
    [pytest.param(run, kwargs, id=exp_id) for exp_id, run, kwargs in EXPERIMENTS],
)
def test_experiment_runs_and_returns_populated_result(run, kwargs):
    result = run(**kwargs)
    assert result is not None
    assert dataclasses.is_dataclass(result)
    fields = dataclasses.asdict(result)
    assert fields, f"{run.__name__} returned an empty result"
    # A populated result has at least one non-trivial (non-None, non-empty-
    # container) field; all-None results would mean the pipeline silently
    # produced nothing.
    non_trivial = [
        value
        for value in fields.values()
        if value is not None and (not hasattr(value, "__len__") or len(value) > 0)
    ]
    assert non_trivial, f"{run.__name__} returned only empty fields"


def test_experiment_results_are_deterministic_under_fixed_seed():
    first = run_binlog_timing(num_writes=40, seed=SEED)
    second = run_binlog_timing(num_writes=40, seed=SEED)
    assert first == second

"""Scaled-down integration tests for the supplementary experiments."""


from repro.experiments import (
    run_adaptive_hash_leak,
    run_mongo_timing,
    run_ope_sorting,
    run_seabed_on_spark,
    run_slow_log_inference,
)


class TestE3bMongoTiming:
    def test_objectid_timeline_exact(self):
        result = run_mongo_timing(num_hours=10, docs_per_burst=8)
        assert result.objectid_times_exact
        assert result.oplog_retained == result.documents_inserted

    def test_burst_detection(self):
        result = run_mongo_timing(num_hours=10, docs_per_burst=8, seed=3)
        assert result.burst_hours_detected == result.true_burst_hours

    def test_capped_oplog_window(self):
        result = run_mongo_timing(
            num_hours=20, docs_per_burst=10, oplog_capacity=30, seed=1
        )
        assert result.oplog_retained == 30
        # ObjectIds still date everything - they are not a log.
        assert result.objectid_times_exact


class TestE4bSlowLog:
    def test_analytic_queries_recovered(self):
        result = run_slow_log_inference(
            table_rows=800, oltp_queries=60, analytic_queries=6
        )
        assert result.analytic_recovery_rate == 1.0

    def test_oltp_stays_off_disk(self):
        result = run_slow_log_inference(
            table_rows=800, oltp_queries=60, analytic_queries=6
        )
        assert result.oltp_leaked == 0
        assert result.slow_entries_on_disk == result.analytic_queries


class TestE5bAdaptiveHash:
    def test_hottest_key_identified(self):
        result = run_adaptive_hash_leak(num_keys=25, num_lookups=800)
        assert result.hottest_identified
        assert result.promoted_keys >= 1

    def test_top_identities_recovered(self):
        result = run_adaptive_hash_leak(num_keys=25, num_lookups=1_200)
        assert result.top5_recovery_rate >= 0.6

    def test_higher_threshold_promotes_fewer(self):
        low = run_adaptive_hash_leak(num_keys=25, num_lookups=800, promotion_threshold=4)
        high = run_adaptive_hash_leak(num_keys=25, num_lookups=800, promotion_threshold=64)
        assert high.promoted_keys <= low.promoted_keys


class TestE9bSeabedSpark:
    def test_event_log_recovers_everything(self):
        result = run_seabed_on_spark(domain_size=8, num_queries=60)
        assert result.history_queries_recovered == 60
        assert result.histogram_exact
        assert result.counts_correct

    def test_worker_heaps_hold_last_query(self):
        result = run_seabed_on_spark(domain_size=8, num_queries=60)
        assert result.executors_with_residue >= 1


class TestE13Ope:
    def test_dense_total_recovery(self):
        result = run_ope_sorting(num_rows=600)
        assert result.dense_case
        assert result.row_recovery_rate == 1.0
        assert result.value_recovery_rate == 1.0

    def test_sparse_partial_recovery(self):
        result = run_ope_sorting(num_rows=150, zipf_s=1.2)
        assert not result.dense_case
        # Far above the 1/domain ~ 1.4% random baseline; exact recovery
        # needs either density or more samples (see the benchmark).
        assert result.row_recovery_rate >= 0.25

"""Tests for SQL-injection diagnostics extraction (paper Section 4)."""

import pytest

from repro.forensics import extract_diagnostics_via_injection
from repro.server import MySQLServer, ServerConfig


@pytest.fixture
def victim_scenario():
    """A victim app issuing sensitive queries + an attacker foothold."""
    server = MySQLServer()
    victim = server.connect("webapp")
    attacker = server.connect("webapp")  # same app user, injected connection
    server.execute(
        victim,
        "CREATE TABLE patients (id INT PRIMARY KEY, name TEXT, diagnosis TEXT)",
    )
    server.execute(
        victim,
        "INSERT INTO patients (id, name, diagnosis) VALUES "
        "(1, 'alice', 'flu'), (2, 'bob', 'broken arm')",
    )
    server.execute(victim, "SELECT * FROM patients WHERE diagnosis = 'flu'")
    server.execute(victim, "SELECT * FROM patients WHERE diagnosis = 'broken arm'")
    server.execute(victim, "SELECT name FROM patients WHERE id = 1")
    return server, victim, attacker


class TestInjectionExtraction:
    def test_recovers_other_users_queries(self, victim_scenario):
        server, victim, attacker = victim_scenario
        report = extract_diagnostics_via_injection(server, attacker)
        assert any("diagnosis = 'flu'" in q for q in report.other_users_queries)

    def test_history_includes_full_text(self, victim_scenario):
        server, _, attacker = victim_scenario
        report = extract_diagnostics_via_injection(server, attacker)
        texts = report.observed_query_texts
        assert any("'broken arm'" in t for t in texts)

    def test_digest_histogram_groups_query_types(self, victim_scenario):
        server, _, attacker = victim_scenario
        report = extract_diagnostics_via_injection(server, attacker)
        diagnosis_digests = [
            (text, count)
            for text, count in report.digest_histogram.items()
            if "diagnosis = ?" in text
        ]
        assert diagnosis_digests
        assert diagnosis_digests[0][1] == 2  # two queries of that type

    def test_processlist_includes_attacker_probe(self, victim_scenario):
        server, _, attacker = victim_scenario
        report = extract_diagnostics_via_injection(server, attacker)
        infos = [row[5] for row in report.processlist if row[5]]
        assert any("processlist" in (info or "") for info in infos)

    def test_history_window_limits_recovery(self):
        """With the default 10-entry history, old queries age out per-thread."""
        server = MySQLServer(ServerConfig(perf_schema_history_size=10))
        victim = server.connect("webapp")
        attacker = server.connect("webapp")
        server.execute(victim, "CREATE TABLE t (id INT PRIMARY KEY)")
        secret = "SELECT id FROM t WHERE id = 777777"
        server.execute(victim, secret)
        for i in range(20):
            server.execute(victim, f"SELECT id FROM t WHERE id = {i}")
        report = extract_diagnostics_via_injection(server, attacker)
        assert secret not in report.observed_query_texts
        # But the digest table still counts its query type forever.
        assert any("WHERE id = ?" in text for text in report.digest_histogram)

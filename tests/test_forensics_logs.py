"""Tests for redo/undo reconstruction and binlog correlation forensics."""

import pytest

from repro.clock import SimClock
from repro.errors import ForensicsError
from repro.forensics import (
    fit_lsn_timestamp_model,
    parse_redo_log,
    parse_undo_log,
    read_binlog_text,
    reconstruct_modifications,
    reconstruct_statements,
)
from repro.forensics.binlog_reader import date_modifications
from repro.server import MySQLServer
from repro.snapshot import AttackScenario, capture


@pytest.fixture
def server_with_writes():
    server = MySQLServer()
    session = server.connect("app")
    server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'alpha'), (2, 'beta')")
    server.execute(session, "UPDATE t SET v = 'gamma' WHERE id = 1")
    server.execute(session, "DELETE FROM t WHERE id = 2")
    return server


class TestLogParsing:
    def test_parse_redo(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        records = parse_redo_log(snap.redo_log_raw)
        assert len(records) == 4  # 2 inserts, 1 update, 1 delete
        ops = [r.op for _, r in records]
        assert ops == ["insert", "insert", "update", "delete"]

    def test_parse_undo(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        records = parse_undo_log(snap.undo_log_raw)
        assert len(records) == 4
        # Delete's before-image holds the deleted row bytes.
        delete = [r for _, r in records if r.op == "delete"][0]
        assert delete.before_image != b""

    def test_corrupt_framing_rejected(self):
        with pytest.raises(ForensicsError):
            parse_redo_log(b"\x01\x02\x03")

    def test_truncated_record_rejected(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        with pytest.raises(ForensicsError):
            parse_redo_log(snap.redo_log_raw[:-3])

    def test_empty_log(self):
        assert parse_redo_log(b"") == []


class TestReconstruction:
    def test_merges_before_and_after_images(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
        update = [e for e in events if e.op == "update"][0]
        assert update.before == (1, "alpha")
        assert update.after == (1, "gamma")

    def test_delete_recovers_dead_row(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
        delete = [e for e in events if e.op == "delete"][0]
        assert delete.before == (2, "beta")  # data no longer in the table!

    def test_events_sorted_by_lsn(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
        lsns = [e.lsn for e in events]
        assert lsns == sorted(lsns)

    def test_redo_only_still_works(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, None)
        assert len(events) == 4
        assert all(e.before is None for e in events)

    def test_undo_only_still_works(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(None, snap.undo_log_raw)
        assert len(events) == 4
        assert all(e.after is None for e in events)

    def test_pseudo_sql_rendering(self, server_with_writes):
        snap = capture(server_with_writes, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
        statements = reconstruct_statements(events)
        assert any(
            s.startswith("INSERT INTO t VALUES (1, 'alpha')") for s in statements
        )
        assert any("DELETE FROM t" in s for s in statements)


class TestBinlogCorrelation:
    def make_server(self):
        clock = SimClock(start=1_000_000)
        server = MySQLServer(clock=clock)
        session = server.connect("writer")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        return server, session, clock

    def test_text_roundtrip(self, server_with_writes):
        events = server_with_writes.engine.binlog.events
        text = server_with_writes.engine.binlog.to_text()
        parsed = read_binlog_text(text)
        assert [(e.timestamp, e.txn_id, e.lsn) for e in parsed] == [
            (e.timestamp, e.txn_id, e.lsn) for e in events
        ]

    def test_model_interpolates(self):
        server, session, clock = self.make_server()
        for i in range(20):
            server.execute(session, f"INSERT INTO t (id, v) VALUES ({i}, {i})")
            clock.advance(60)
        model = fit_lsn_timestamp_model(server.engine.binlog.events)
        events = server.engine.binlog.events
        mid = events[10]
        estimate = model.timestamp_for(mid.lsn)
        assert abs(estimate - mid.timestamp) < 61

    def test_model_extrapolates_before_window(self):
        # Write steadily, then purge the early binlog; the model fitted on
        # the tail must date the purged-era LSNs well.
        server, session, clock = self.make_server()
        truth = []
        for i in range(60):
            result = server.execute(
                session, f"INSERT INTO t (id, v) VALUES ({i}, {i})"
            )
            truth.append((server.engine.lsn.current, clock.timestamp()))
            clock.advance(60)
        events = server.engine.binlog.events
        cutoff = events[30].timestamp
        server.engine.binlog.purge_before(cutoff)
        model = fit_lsn_timestamp_model(server.engine.binlog.events)
        early_lsn, early_time = truth[5]
        estimate = model.timestamp_for(early_lsn)
        # Within a couple of write intervals of the truth.
        assert abs(estimate - early_time) < 180

    def test_model_needs_two_events(self):
        with pytest.raises(ForensicsError):
            fit_lsn_timestamp_model([])

    def test_date_modifications(self):
        server, session, clock = self.make_server()
        for i in range(10):
            server.execute(session, f"INSERT INTO t (id, v) VALUES ({i}, {i})")
            clock.advance(10)
        snap = capture(server, AttackScenario.DISK_THEFT)
        events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
        model = fit_lsn_timestamp_model(snap.binlog_events)
        dated = date_modifications(model, events)
        assert all(e.estimated_timestamp is not None for e in dated)
        # Estimated times increase with LSN.
        times = [e.estimated_timestamp for e in dated]
        assert times == sorted(times)

"""Tests for memory-scan and buffer-pool-dump forensics."""

import pytest

from repro.errors import ForensicsError
from repro.forensics import (
    infer_access_paths,
    parse_dump_text,
    scan_for_query,
    scan_for_tokens,
)
from repro.forensics.buffer_pool_dump import leaf_pages_touched
from repro.forensics.memory_scan import carve_statements_containing
from repro.memory import MemoryDump
from repro.server import MySQLServer, ServerConfig
from repro.snapshot import AttackScenario, capture


class TestMemoryScan:
    def test_residue_report_counts(self):
        query = "SELECT zzqqx FROM t"
        data = f"{query}||zzqqx||zzqqx||other".encode()
        report = scan_for_query(MemoryDump(data), query, "zzqqx")
        assert report.full_query_locations == 1
        assert report.marker_only_locations == 2
        assert report.total_marker_locations == 3
        assert report.leaks

    def test_no_residue(self):
        report = scan_for_query(MemoryDump(b"nothing here"), "SELECT x", "x-marker")
        assert report.full_query_locations == 0
        assert not report.leaks

    def test_token_carving(self):
        token = "ab" * 20  # 40 hex chars
        dump = MemoryDump(f"SELECT id FROM t WHERE MATCH(tags, '{token}')".encode())
        carved = scan_for_tokens(dump)
        assert any(token in hexstr for _, hexstr in carved)

    def test_short_hex_ignored(self):
        dump = MemoryDump(b"deadbeef is too short")
        assert scan_for_tokens(dump, min_hex_length=32) == []

    def test_carve_statements_containing(self):
        dump = MemoryDump(b"\x00SELECT a FROM t WHERE x = 'needle'\x00SELECT b FROM u\x00")
        hits = carve_statements_containing(dump, "needle")
        assert len(hits) == 1

    def test_real_server_residue(self):
        server = MySQLServer()
        session = server.connect()
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        marker = "xq7marker9z"
        query = f"SELECT v FROM t WHERE v = '{marker}'"
        server.execute(session, query)
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        report = scan_for_query(snap.require_memory_dump(), query, marker)
        assert report.full_query_locations >= 2   # net buffer + arena + history
        assert report.marker_only_locations >= 2  # token/parser/executor copies


class TestBufferPoolDumpForensics:
    def make_dump(self):
        server = MySQLServer(ServerConfig(btree_fanout=4))
        session = server.connect()
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(100):
            server.execute(session, f"INSERT INTO t (id, v) VALUES ({i}, {i})")
        server.execute(session, "SELECT v FROM t WHERE id = 42")
        return server, server.dump_buffer_pool()

    def test_text_roundtrip(self):
        _, dump = self.make_dump()
        parsed = parse_dump_text(dump.to_text())
        assert parsed.entries == dump.entries

    def test_bad_line_rejected(self):
        with pytest.raises(ForensicsError):
            parse_dump_text("1,2,3\n")
        with pytest.raises(ForensicsError):
            parse_dump_text("a,b,c,d\n")

    def test_comments_and_blanks_skipped(self):
        parsed = parse_dump_text("# header\n\n1,2,0,5\n")
        assert len(parsed.entries) == 1

    def test_infer_recent_lookup_path(self):
        server, dump = self.make_dump()
        paths = infer_access_paths(dump)
        assert paths, "expected at least one inferred traversal"
        # The most recent traversal is the id=42 lookup: root-to-leaf with
        # strictly descending levels, ending at a leaf.
        last = paths[-1]
        assert last.reaches_leaf
        assert last.depth == server.engine.btree("t").height
        assert list(last.levels) == sorted(last.levels, reverse=True)

    def test_inferred_path_matches_true_pages(self):
        server, dump = self.make_dump()
        # Ground truth: repeat the same lookup and compare page sets.
        _, true_path = server.engine.get("t", 42)
        paths = infer_access_paths(dump)
        assert tuple(true_path.page_ids) == paths[-1].page_ids

    def test_leaf_pages_touched(self):
        _, dump = self.make_dump()
        leaves = leaf_pages_touched(dump)
        assert leaves
        assert all(isinstance(p, int) for p in leaves)

    def test_min_depth_filter(self):
        _, dump = self.make_dump()
        deep_only = infer_access_paths(dump, min_depth=100)
        assert deep_only == []

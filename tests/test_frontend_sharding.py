"""Connection front end (scheduler) and hash-sharded engine unit tests."""

import pytest

from repro.errors import EngineError, SchedulerError
from repro.server import MySQLServer, ServerConfig
from repro.server.frontend import (
    SchedulingPolicy,
    ServerFrontend,
    SessionScheduler,
)
from repro.server.sharding import SPACE_ID_STRIDE, ShardRouter, ShardedEngine


class TestSessionScheduler:
    def test_fifo_is_global_arrival_order(self):
        sched = SessionScheduler(policy=SchedulingPolicy.FIFO)
        for sid, sql in [(1, "a"), (2, "b"), (1, "c"), (3, "d")]:
            sched.submit(sid, sql, arrival_ts=0)
        order = []
        while True:
            req = sched.next_request()
            if req is None:
                break
            order.append(req.sql)
        assert order == ["a", "b", "c", "d"]

    def test_fair_round_robins_sessions(self):
        sched = SessionScheduler(policy=SchedulingPolicy.FAIR)
        for sql in ("a1", "a2", "a3"):
            sched.submit(1, sql, arrival_ts=0)
        for sql in ("b1", "b2"):
            sched.submit(2, sql, arrival_ts=0)
        order = []
        while True:
            req = sched.next_request()
            if req is None:
                break
            order.append(req.sql)
        assert order == ["a1", "b1", "a2", "b2", "a3"]

    def test_random_policy_is_seed_deterministic(self):
        def drain(seed):
            sched = SessionScheduler(policy=SchedulingPolicy.RANDOM, seed=seed)
            for sid in (1, 2, 3):
                for i in range(4):
                    sched.submit(sid, f"s{sid}-{i}", arrival_ts=0)
            order = []
            while True:
                req = sched.next_request()
                if req is None:
                    break
                order.append(req.sql)
            return order

        assert drain(7) == drain(7)
        assert any(drain(a) != drain(b) for a, b in [(1, 2), (2, 3), (1, 3)])

    def test_per_session_order_always_preserved(self):
        for policy in SchedulingPolicy:
            sched = SessionScheduler(policy=policy, seed=3)
            for sid in (1, 2):
                for i in range(5):
                    sched.submit(sid, f"{sid}:{i}", arrival_ts=0)
            seen = {1: [], 2: []}
            while True:
                req = sched.next_request()
                if req is None:
                    break
                seen[req.session_id].append(req.sql)
            for sid in (1, 2):
                assert seen[sid] == [f"{sid}:{i}" for i in range(5)]

    def test_bounded_queue_rejects_loudly(self):
        sched = SessionScheduler(capacity=2)
        sched.submit(1, "a", arrival_ts=0)
        sched.submit(1, "b", arrival_ts=0)
        with pytest.raises(SchedulerError):
            sched.submit(2, "c", arrival_ts=0)
        assert sched.telemetry.rejected == 1
        # Dispatch frees a slot.
        assert sched.next_request() is not None
        sched.submit(2, "c", arrival_ts=1)

    def test_depth_telemetry_tracks_admissions_and_dispatches(self):
        sched = SessionScheduler()
        sched.submit(1, "a", arrival_ts=5)
        sched.submit(1, "b", arrival_ts=6)
        sched.next_request()
        assert sched.telemetry.depth_samples == [1, 2, 1]
        assert sched.telemetry.arrivals == [(0, 1, 5), (1, 1, 6)]


class TestServerFrontend:
    def make(self, **kwargs):
        server = MySQLServer()
        frontend = ServerFrontend(server, **kwargs)
        return server, frontend

    def test_admits_thousands_of_sessions(self):
        _, frontend = self.make(max_sessions=5000)
        sessions = [frontend.open_session(f"u{i}") for i in range(2048)]
        assert frontend.num_sessions == 2048
        for session in sessions:
            frontend.close_session(session)
        assert frontend.num_sessions == 0

    def test_session_cap_rejects_loudly(self):
        _, frontend = self.make(max_sessions=2)
        frontend.open_session("a")
        frontend.open_session("b")
        with pytest.raises(SchedulerError):
            frontend.open_session("c")

    def test_statement_errors_are_captured_not_raised(self):
        _, frontend = self.make()
        session = frontend.open_session()
        frontend.submit(session, "SELECT id FROM missing_table")
        frontend.drain()
        (done,) = frontend.completed
        assert done.result is None
        assert done.error is not None
        assert "missing_table" in done.error

    def test_drain_reports_dispatch_count(self):
        server, frontend = self.make(num_workers=4)
        session = frontend.open_session()
        frontend.submit(
            session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
        )
        for i in range(9):
            frontend.submit(
                session, f"INSERT INTO t (id, v) VALUES ({i}, {i})"
            )
        assert frontend.drain() == 10
        result = server.execute(
            server.connect("check"), "SELECT COUNT(*) FROM t"
        )
        assert result.rows == ((9,),)

    def test_attaches_scheduler_queue_artifact(self):
        server, frontend = self.make()
        assert server.frontend is frontend
        telemetry = frontend.queue_telemetry()
        assert set(telemetry) == {
            "arrivals", "depth_samples", "dispatched", "rejected",
        }


class TestShardRouter:
    def test_routing_is_stable_and_in_range(self):
        router = ShardRouter(8)
        first = [router.shard_of(k) for k in range(256)]
        second = [router.shard_of(k) for k in range(256)]
        assert first == second
        assert all(0 <= s < 8 for s in first)

    def test_negative_keys_route(self):
        router = ShardRouter(4)
        assert 0 <= router.shard_of(-12345) < 4

    def test_distribution_is_not_degenerate(self):
        router = ShardRouter(8)
        used = {router.shard_of(k) for k in range(1024)}
        assert used == set(range(8))


class TestShardedEngine:
    def make(self, num_shards=4):
        engine = ShardedEngine(num_shards=num_shards, binlog_enabled=True)
        engine.register_table("t")
        return engine

    def test_requires_at_least_two_shards(self):
        with pytest.raises(EngineError):
            ShardedEngine(num_shards=1)

    def test_per_shard_space_id_ranges_are_disjoint(self):
        engine = self.make()
        for i, shard in enumerate(engine.shards):
            space_id = shard.tablespace("t").space_id
            assert i * SPACE_ID_STRIDE < space_id <= (i + 1) * SPACE_ID_STRIDE

    def test_rows_land_on_their_routed_shard_only(self):
        engine = self.make()
        txn = engine.begin()
        for key in range(32):
            engine.insert(txn, "t", key, b"v%d" % key)
        engine.commit(txn)
        for key in range(32):
            home = engine.shard_of(key)
            for i, shard in enumerate(engine.shards):
                value, _ = shard.get("t", key)
                assert (value is not None) == (i == home)

    def test_reads_merge_sorted_across_shards(self):
        engine = self.make()
        txn = engine.begin()
        for key in (9, 3, 27, 14, 1):
            engine.insert(txn, "t", key, b"x")
        engine.commit(txn)
        entries, path = engine.full_scan("t")
        assert [k for k, _ in entries] == [1, 3, 9, 14, 27]
        assert path.page_ids  # combined access path is populated

    def test_range_respects_bounds(self):
        engine = self.make()
        txn = engine.begin()
        for key in range(20):
            engine.insert(txn, "t", key, b"x")
        engine.commit(txn)
        entries, _ = engine.range("t", 5, 11)
        assert [k for k, _ in entries] == list(range(5, 12))

    def test_cross_shard_commit_is_atomic_per_branch(self):
        engine = self.make()
        txn = engine.begin()
        keys = list(range(16))
        for key in keys:
            engine.insert(txn, "t", key, b"v")
        touched = {engine.shard_of(k) for k in keys}
        assert len(touched) > 1
        engine.commit(txn)
        entries, _ = engine.full_scan("t")
        assert len(entries) == 16

    def test_cross_shard_rollback_undoes_every_branch(self):
        engine = self.make()
        txn = engine.begin()
        for key in range(16):
            engine.insert(txn, "t", key, b"v")
        engine.rollback(txn)
        entries, _ = engine.full_scan("t")
        assert entries == []

    def test_ddl_reaches_every_shard_binlog(self):
        engine = self.make()
        engine.log_ddl(0, "CREATE TABLE t (id INT PRIMARY KEY)")
        for shard in engine.shards:
            text = shard.binlog.to_text()
            assert "CREATE TABLE" in text

    def test_per_shard_binlogs_leak_key_distribution(self):
        # The leakage the sharding layer adds: per-shard event counts
        # reveal how the (encrypted) keys hash across shards.
        engine = self.make()
        for key in range(64):  # autocommit: one txn (one binlog event) per key
            txn = engine.begin()
            engine.insert(txn, "t", key, b"v")
            engine.commit(txn)
        counts = [shard.binlog.num_events for shard in engine.shards]
        expected = [
            sum(1 for k in range(64) if engine.shard_of(k) == i)
            for i in range(4)
        ]
        assert counts == expected
        assert sum(counts) == 64

    def test_shard_stats_expose_per_shard_log_sizes(self):
        engine = self.make()
        txn = engine.begin()
        for key in range(64):
            engine.insert(txn, "t", key, b"payload")
        engine.commit(txn)
        stats = engine.shard_stats()
        assert [s.shard for s in stats] == [0, 1, 2, 3]
        assert all(s.redo_bytes > 0 for s in stats)
        assert sum(s.rows for s in stats) == 64

    def test_tablespace_images_are_shard_qualified(self):
        engine = self.make()
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"v")
        engine.commit(txn)
        images = engine.tablespace_images()
        assert set(images) == {f"t@shard{i}" for i in range(4)}

    def test_tablespace_lookup_requires_shard_index(self):
        engine = self.make()
        with pytest.raises(EngineError):
            engine.tablespace("t")
        assert engine.tablespace("t", shard=0) is not None

    def test_combined_lsn_and_logs_aggregate(self):
        engine = self.make()
        txn = engine.begin()
        for key in range(8):
            engine.insert(txn, "t", key, b"v")
        engine.commit(txn)
        assert engine.lsn.current == max(s.lsn.current for s in engine.shards)
        assert engine.redo_log.num_records == sum(
            s.redo_log.num_records for s in engine.shards
        )
        assert engine.binlog.num_events == sum(
            s.binlog.num_events for s in engine.shards
        )
        assert b"".join, engine.redo_log.raw_bytes


class TestShardedServerIntegration:
    def test_server_with_shards_runs_sql(self):
        server = MySQLServer(ServerConfig(num_shards=4))
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(24):
            server.execute(
                session, f"INSERT INTO t (id, v) VALUES ({i}, {i * 10})"
            )
        result = server.execute(
            session, "SELECT v FROM t WHERE id = 13"
        )
        assert result.rows == ((130,),)
        result = server.execute(session, "SELECT COUNT(*) FROM t")
        assert result.rows == ((24,),)

    def test_sharded_restart_persists_disk_state(self):
        server = MySQLServer(ServerConfig(num_shards=2))
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 7)")
        server.restart()
        session = server.connect("app")
        result = server.execute(session, "SELECT v FROM t WHERE id = 1")
        assert result.rows == ((7,),)

"""Unit tests for the simulated heap, arenas, and memory dumps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.memory import BumpArena, MemoryDump, SimulatedHeap


class TestHeapBasics:
    def test_alloc_write_read(self):
        heap = SimulatedHeap()
        addr = heap.malloc(16, tag="test")
        heap.write(addr, b"hello")
        assert heap.read(addr, 5) == b"hello"
        assert heap.block_tag(addr) == "test"

    def test_alloc_bytes_helper(self):
        heap = SimulatedHeap()
        addr = heap.alloc_bytes(b"payload")
        assert heap.read(addr) == b"payload"

    def test_alloc_str_helper(self):
        heap = SimulatedHeap()
        addr = heap.alloc_str("SELECT 1")
        assert heap.read(addr) == b"SELECT 1"

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryModelError):
            SimulatedHeap().malloc(0)

    def test_overflow_write_rejected(self):
        heap = SimulatedHeap()
        addr = heap.malloc(4)
        with pytest.raises(MemoryModelError):
            heap.write(addr, b"toolong")

    def test_double_free_rejected(self):
        heap = SimulatedHeap()
        addr = heap.malloc(4)
        heap.free(addr)
        with pytest.raises(MemoryModelError):
            heap.free(addr)

    def test_use_after_free_rejected(self):
        heap = SimulatedHeap()
        addr = heap.malloc(4)
        heap.free(addr)
        with pytest.raises(MemoryModelError):
            heap.read(addr)

    def test_unknown_address_rejected(self):
        with pytest.raises(MemoryModelError):
            SimulatedHeap().free(123)


class TestNoSecureDeletion:
    """The Section 5 property: freed bytes persist."""

    def test_freed_bytes_persist_in_snapshot(self):
        heap = SimulatedHeap()
        addr = heap.alloc_str("SELECT secret FROM t")
        heap.free(addr)
        assert b"SELECT secret FROM t" in heap.snapshot()

    def test_secure_delete_zeroes(self):
        heap = SimulatedHeap(secure_delete=True)
        addr = heap.alloc_str("SELECT secret FROM t")
        heap.free(addr)
        assert b"SELECT secret FROM t" not in heap.snapshot()

    def test_exact_size_reuse_overwrites(self):
        heap = SimulatedHeap()
        addr = heap.alloc_bytes(b"AAAA")
        heap.free(addr)
        addr2 = heap.malloc(4)
        assert addr2 == addr  # same slot reused
        heap.write(addr2, b"BBBB")
        assert b"AAAA" not in heap.snapshot()

    def test_different_size_not_reused(self):
        heap = SimulatedHeap()
        addr = heap.alloc_bytes(b"AAAA")
        heap.free(addr)
        addr2 = heap.malloc(5)
        assert addr2 != addr
        assert b"AAAA" in heap.snapshot()

    def test_reuse_counts_tracked(self):
        heap = SimulatedHeap()
        a = heap.malloc(8)
        heap.free(a)
        heap.malloc(8)
        assert heap.stats.reused_blocks == 1


class TestBumpArena:
    def test_alloc_and_reset_keeps_bytes(self):
        heap = SimulatedHeap()
        arena = BumpArena(heap, chunk_size=128)
        arena.alloc_str("the marker query text")
        arena.reset()
        # Rewound, not zeroed.
        assert b"the marker query text" in heap.snapshot()

    def test_next_alloc_overwrites_prefix_only(self):
        heap = SimulatedHeap()
        arena = BumpArena(heap, chunk_size=128)
        arena.alloc(b"LONG-OLD-CONTENT-WITH-TAIL")
        arena.reset()
        arena.alloc(b"new")
        snap = heap.snapshot()
        assert b"new" in snap
        assert b"OLD-CONTENT-WITH-TAIL" in snap  # tail survives
        assert b"LONG-OLD" not in snap  # prefix overwritten ("newG-OLD...")

    def test_overflow_allocates_chunks(self):
        heap = SimulatedHeap()
        arena = BumpArena(heap, chunk_size=16)
        for _ in range(5):
            arena.alloc(b"x" * 10)
        assert arena.num_chunks > 1
        arena.reset()
        assert arena.num_chunks == 1

    def test_oversized_allocation_gets_own_chunk(self):
        heap = SimulatedHeap()
        arena = BumpArena(heap, chunk_size=16)
        arena.alloc(b"y" * 100)
        assert b"y" * 100 in heap.snapshot()

    def test_release_frees_all(self):
        heap = SimulatedHeap()
        arena = BumpArena(heap, chunk_size=16)
        arena.alloc(b"data")
        arena.release()
        assert arena.num_chunks == 0
        # Still unzeroed after release.
        assert b"data" in heap.snapshot()

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(MemoryModelError):
            BumpArena(SimulatedHeap(), chunk_size=0)


class TestMemoryDump:
    def test_find_all(self):
        dump = MemoryDump(b"xxNEEDLExxNEEDLExx")
        assert dump.find_all(b"NEEDLE") == [2, 10]

    def test_find_all_empty_needle(self):
        assert MemoryDump(b"abc").find_all(b"") == []

    def test_count_locations(self):
        dump = MemoryDump("query A query B query".encode())
        assert dump.count_locations("query") == 3

    def test_locations_containing_only(self):
        # One standalone marker and one embedded in the full query.
        query = "SELECT xyzzy FROM t"
        data = f"{query}||xyzzy||junk".encode()
        dump = MemoryDump(data)
        assert dump.count_locations("xyzzy") == 2
        assert dump.locations_containing_only("xyzzy", query) == 1

    def test_extract_strings(self):
        dump = MemoryDump(b"\x00\x01printable string here\x02\x03ok\x00")
        strings = [s for _, s in dump.extract_strings(min_length=6)]
        assert "printable string here" in strings
        assert "ok" not in strings  # below min length

    def test_carve_sql(self):
        data = b"\x00garbage\x00SELECT * FROM customers WHERE id = 1\x00more"
        carved = MemoryDump(data).carve_sql()
        assert any("SELECT * FROM customers" in text for _, text in carved)

    def test_carve_sql_case_insensitive(self):
        carved = MemoryDump(b"..insert into t values (1)..").carve_sql()
        assert len(carved) == 1

    @given(st.binary(max_size=100), st.binary(min_size=1, max_size=8))
    def test_find_all_matches_stdlib_count_lower_bound(self, haystack, needle):
        dump = MemoryDump(haystack)
        # Overlapping count is >= non-overlapping stdlib count.
        assert len(dump.find_all(needle)) >= haystack.count(needle)

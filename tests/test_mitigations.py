"""Tests for the history-independent index (paper §7 mitigation)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.mitigations import HistoryIndependentIndex
from repro.storage import BTree, Tablespace


class TestBasicOps:
    def test_insert_get(self):
        index = HistoryIndependentIndex()
        index.insert(5, b"five")
        assert index.get(5) == b"five"
        assert index.get(6) is None

    def test_duplicate_rejected(self):
        index = HistoryIndependentIndex()
        index.insert(1, b"a")
        with pytest.raises(StorageError):
            index.insert(1, b"b")

    def test_delete(self):
        index = HistoryIndependentIndex()
        index.insert(1, b"a")
        assert index.delete(1) == b"a"
        assert index.get(1) is None
        with pytest.raises(StorageError):
            index.delete(1)

    def test_range(self):
        index = HistoryIndependentIndex()
        for k in (5, 1, 9, 3):
            index.insert(k, str(k).encode())
        assert [k for k, _ in index.range(2, 6)] == [3, 5]
        assert [k for k, _ in index.range(None, None)] == [1, 3, 5, 9]

    def test_iteration_sorted(self):
        index = HistoryIndependentIndex()
        for k in (7, 2, 4):
            index.insert(k, b"")
        assert [k for k, _ in index] == [2, 4, 7]

    def test_bad_capacity(self):
        with pytest.raises(StorageError):
            HistoryIndependentIndex(page_capacity=0)


class TestUniqueRepresentation:
    """The defining property: representation is a function of contents only."""

    def test_insertion_order_invariance(self):
        keys = list(range(50))
        rng = random.Random(0)
        images = set()
        for _ in range(5):
            order = keys[:]
            rng.shuffle(order)
            index = HistoryIndependentIndex(page_capacity=8)
            for k in order:
                index.insert(k, str(k).encode())
            images.add(index.to_bytes())
        assert len(images) == 1

    def test_deletes_leave_no_residue(self):
        direct = HistoryIndependentIndex(page_capacity=8)
        for k in (1, 2, 3):
            direct.insert(k, str(k).encode())

        churned = HistoryIndependentIndex(page_capacity=8)
        for k in (9, 1, 7, 2, 3, 5):
            churned.insert(k, str(k).encode())
        for k in (9, 7, 5):
            churned.delete(k)
        assert churned.to_bytes() == direct.to_bytes()

    def test_btree_by_contrast_leaks_insertion_history(self):
        """The default structure's images differ by insertion order."""

        def build(order):
            space = Tablespace(1, "t")
            tree = BTree(space, max_entries=4)
            for k in order:
                tree.insert(k, str(k).encode())
            return space.to_bytes()

        ascending = build(list(range(40)))
        descending = build(list(reversed(range(40))))
        assert ascending != descending  # page layout encodes history

    def test_serialization_roundtrip(self):
        index = HistoryIndependentIndex(page_capacity=4)
        for k in (3, 1, 4, 1 + 4, 9, 2, 6):
            index.insert(k, bytes([k]))
        restored = HistoryIndependentIndex.from_bytes(index.to_bytes())
        assert list(restored) == list(index)
        assert restored.to_bytes() == index.to_bytes()

    def test_non_canonical_image_rejected(self):
        a = HistoryIndependentIndex(page_capacity=4)
        a.insert(2, b"x")
        b = HistoryIndependentIndex(page_capacity=4)
        b.insert(1, b"y")
        # Splice b's page after a's to fabricate out-of-order keys.
        image_a = a.to_bytes()
        image_b = b.to_bytes()
        forged = image_a[:4] + (2).to_bytes(4, "little") + image_a[8:] + image_b[8:]
        with pytest.raises(StorageError):
            HistoryIndependentIndex.from_bytes(forged)

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(20))))
    def test_unique_representation_property(self, order):
        canonical = HistoryIndependentIndex(page_capacity=6)
        for k in sorted(order):
            canonical.insert(k, str(k).encode())
        shuffled = HistoryIndependentIndex(page_capacity=6)
        for k in order:
            shuffled.insert(k, str(k).encode())
        assert shuffled.to_bytes() == canonical.to_bytes()

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 100), min_size=1, max_size=30),
        st.sets(st.integers(101, 200), max_size=15),
    )
    def test_insert_delete_churn_property(self, keep, churn):
        direct = HistoryIndependentIndex(page_capacity=5)
        for k in sorted(keep):
            direct.insert(k, b"v")
        noisy = HistoryIndependentIndex(page_capacity=5)
        for k in sorted(keep | churn, reverse=True):
            noisy.insert(k, b"v")
        for k in churn:
            noisy.delete(k)
        assert noisy.to_bytes() == direct.to_bytes()

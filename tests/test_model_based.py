"""Model-based testing: the server vs a naive in-memory reference.

A random workload of INSERT/UPDATE/DELETE/SELECT statements is applied both
to the real :class:`MySQLServer` and to a dict-based reference model; every
SELECT's result set must agree, and at the end the forensic log
reconstruction must replay the model's exact write history — the deep
invariant the paper's Section 3 forensics depends on.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.forensics import reconstruct_modifications
from repro.server import MySQLServer
from repro.snapshot import AttackScenario, capture


class ReferenceTable:
    """The naive model: a dict of id -> (name, score)."""

    def __init__(self):
        self.rows = {}
        self.write_log = []  # (op, key) in application order

    def insert(self, key, name, score):
        if key in self.rows:
            return False
        self.rows[key] = (name, score)
        self.write_log.append(("insert", key))
        return True

    def update_score(self, low, high, score):
        changed = 0
        for key, (name, _old) in sorted(self.rows.items()):
            if low <= key <= high:
                self.rows[key] = (name, score)
                self.write_log.append(("update", key))
                changed += 1
        return changed

    def delete(self, low, high):
        doomed = [k for k in sorted(self.rows) if low <= k <= high]
        for key in doomed:
            del self.rows[key]
            self.write_log.append(("delete", key))
        return len(doomed)

    def select_range(self, low, high):
        return sorted(
            (k, name, score)
            for k, (name, score) in self.rows.items()
            if low <= k <= high
        )

    def select_by_score(self, threshold):
        return sorted(
            (k, name, score)
            for k, (name, score) in self.rows.items()
            if score is not None and score >= threshold
        )


operation = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(0, 60),
        st.sampled_from(["ada", "bob", "cy"]),
        st.integers(0, 100),
    ),
    st.tuples(st.just("update"), st.integers(0, 60), st.integers(0, 60), st.integers(0, 100)),
    st.tuples(st.just("delete"), st.integers(0, 60), st.integers(0, 60)),
    st.tuples(st.just("select_range"), st.integers(0, 60), st.integers(0, 60)),
    st.tuples(st.just("select_score"), st.integers(0, 100)),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(operation, min_size=1, max_size=40))
def test_server_agrees_with_reference_model(ops):
    server = MySQLServer()
    session = server.connect("model")
    server.execute(
        session, "CREATE TABLE m (id INT PRIMARY KEY, name TEXT, score INT)"
    )
    model = ReferenceTable()

    for op in ops:
        if op[0] == "insert":
            _, key, name, score = op
            if model.insert(key, name, score):
                server.execute(
                    session,
                    f"INSERT INTO m (id, name, score) VALUES ({key}, '{name}', {score})",
                )
        elif op[0] == "update":
            _, a, b, score = op
            low, high = min(a, b), max(a, b)
            result = server.execute(
                session,
                f"UPDATE m SET score = {score} WHERE id BETWEEN {low} AND {high}",
            )
            assert result.rows_affected == model.update_score(low, high, score)
        elif op[0] == "delete":
            _, a, b = op
            low, high = min(a, b), max(a, b)
            result = server.execute(
                session, f"DELETE FROM m WHERE id BETWEEN {low} AND {high}"
            )
            assert result.rows_affected == model.delete(low, high)
        elif op[0] == "select_range":
            _, a, b = op
            low, high = min(a, b), max(a, b)
            result = server.execute(
                session,
                f"SELECT id, name, score FROM m "
                f"WHERE id BETWEEN {low} AND {high} ORDER BY id",
            )
            assert [tuple(r) for r in result.rows] == model.select_range(low, high)
        else:
            _, threshold = op
            result = server.execute(
                session,
                f"SELECT id, name, score FROM m WHERE score >= {threshold} ORDER BY id",
            )
            assert [tuple(r) for r in result.rows] == model.select_by_score(threshold)

    # Forensic invariant: the logs replay the model's exact write history.
    snap = capture(server, AttackScenario.DISK_THEFT)
    events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
    log = [(e.op, e.key) for e in events if e.table == "m"]
    assert log == model.write_log

    # Binlog invariant: every INSERT statement that changed the table is
    # present with its full text (UPDATE/DELETE appear when they matched).
    binlog_inserts = sum(
        1 for e in snap.binlog_events if e.statement.startswith("INSERT INTO m")
    )
    model_inserts = sum(1 for op, _ in model.write_log if op == "insert")
    assert binlog_inserts == model_inserts

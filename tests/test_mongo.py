"""Tests for the MongoDB-flavored substrate and its forensics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import SimClock
from repro.errors import ForensicsError, LogError, ReproError
from repro.mongo import (
    DocumentStore,
    ObjectId,
    Oplog,
    OplogEntry,
    creation_times_from_ids,
    reconstruct_oplog_history,
)
from repro.mongo.forensics import capture_disk, write_rate_timeline
from repro.mongo.objectid import ObjectIdGenerator


class TestObjectId:
    def test_embeds_timestamp(self):
        gen = ObjectIdGenerator(lambda: 1_500_000_000)
        oid = gen.next()
        assert oid.timestamp == 1_500_000_000

    def test_counter_increments(self):
        gen = ObjectIdGenerator(lambda: 100)
        a, b = gen.next(), gen.next()
        assert b.counter == a.counter + 1
        assert a != b

    def test_sorts_by_time_then_counter(self):
        times = iter([100, 100, 200])
        gen = ObjectIdGenerator(lambda: next(times))
        a, b, c = gen.next(), gen.next(), gen.next()
        assert sorted([c, b, a]) == [a, b, c]

    def test_hex_roundtrip(self):
        gen = ObjectIdGenerator(lambda: 42)
        oid = gen.next()
        assert ObjectId.from_hex(oid.hex()) == oid

    def test_wrong_length_rejected(self):
        with pytest.raises(ReproError):
            ObjectId(b"short")

    def test_bad_machine_id_rejected(self):
        with pytest.raises(ReproError):
            ObjectIdGenerator(lambda: 0, machine_id=b"xx")

    @given(st.integers(0, 2**32 - 1))
    def test_timestamp_roundtrip_property(self, stamp):
        gen = ObjectIdGenerator(lambda: stamp)
        assert gen.next().timestamp == stamp


class TestOplog:
    def entry(self, ts=100, op="i", ns="app.users"):
        return OplogEntry(ts=ts, ns=ns, op=op, o={"x": 1})

    def test_append_and_read(self):
        log = Oplog()
        log.append(self.entry())
        assert log.num_entries == 1

    def test_capped_ring(self):
        log = Oplog(capacity_entries=3)
        for i in range(10):
            log.append(self.entry(ts=100 + i))
        assert log.num_entries == 3
        assert log.entries[0].ts == 107
        assert log.total_appended == 10

    def test_window(self):
        log = Oplog(capacity_entries=5)
        assert log.window() is None
        for i in range(8):
            log.append(self.entry(ts=100 + i))
        assert log.window() == (103, 107)

    def test_monotone_timestamps_enforced(self):
        log = Oplog()
        log.append(self.entry(ts=200))
        with pytest.raises(LogError):
            log.append(self.entry(ts=100))

    def test_disabled_oplog(self):
        log = Oplog(enabled=False)
        log.append(self.entry())
        assert log.num_entries == 0

    def test_bad_op_rejected(self):
        with pytest.raises(LogError):
            OplogEntry(ts=1, ns="a.b", op="x", o={})

    def test_namespace_filter(self):
        log = Oplog()
        log.append(self.entry(ts=1, ns="app.a"))
        log.append(self.entry(ts=2, ns="app.b"))
        assert len(log.for_namespace("app.a")) == 1


class TestDocumentStore:
    def make_store(self, **kwargs):
        return DocumentStore(clock=SimClock(start=1_000_000), **kwargs)

    def test_insert_and_find(self):
        store = self.make_store()
        store.insert_one("users", {"name": "alice", "age": 30})
        store.insert_one("users", {"name": "bob", "age": 40})
        assert len(store.find("users")) == 2
        assert store.find("users", {"name": "alice"})[0]["age"] == 30

    def test_range_query_operators(self):
        store = self.make_store()
        for age in (10, 20, 30, 40):
            store.insert_one("users", {"age": age})
        assert len(store.find("users", {"age": {"$gte": 20, "$lt": 40}})) == 2
        assert len(store.find("users", {"age": {"$ne": 10}})) == 3

    def test_unsupported_operator_rejected(self):
        store = self.make_store()
        store.insert_one("users", {"age": 1})
        with pytest.raises(ReproError):
            store.find("users", {"age": {"$regex": "x"}})

    def test_update_many(self):
        store = self.make_store()
        store.insert_one("users", {"name": "alice", "vip": False})
        store.insert_one("users", {"name": "bob", "vip": False})
        assert store.update_many("users", {"name": "alice"}, {"vip": True}) == 1
        assert store.find("users", {"vip": True})[0]["name"] == "alice"

    def test_delete_many(self):
        store = self.make_store()
        for i in range(5):
            store.insert_one("users", {"i": i})
        assert store.delete_many("users", {"i": {"$gte": 3}}) == 2
        assert store.count("users") == 3

    def test_ids_embed_insertion_time(self):
        clock = SimClock(start=500_000)
        store = DocumentStore(clock=clock)
        first = store.insert_one("t", {"a": 1})
        clock.advance(3600)
        second = store.insert_one("t", {"a": 2})
        assert second.timestamp - first.timestamp >= 3600

    def test_every_write_hits_oplog(self):
        store = self.make_store()
        store.insert_one("t", {"a": 1})
        store.update_many("t", {"a": 1}, {"a": 2})
        store.delete_many("t", {"a": 2})
        ops = [e.op for e in store.oplog.entries]
        assert ops == ["i", "u", "d"]

    def test_profiler_catches_slow_ops(self):
        store = self.make_store(profile_threshold_ms=0.5)
        for i in range(100):
            store.insert_one("t", {"i": i})
        store.find("t", {"i": {"$gte": 50}})
        profile = store.profile_entries()
        assert profile
        assert profile[-1].query == {"i": {"$gte": 50}}  # full spec leaked

    def test_server_status(self):
        store = self.make_store()
        store.insert_one("t", {"a": 1})
        status = store.server_status()
        assert status["collections"]["t"] == 1
        assert status["opcounters"]["total"] >= 1

    def test_current_op_none_when_idle(self):
        store = self.make_store()
        assert store.current_op() is None


class TestMongoForensics:
    def loaded_store(self):
        clock = SimClock(start=1_000_000)
        store = DocumentStore(clock=clock, oplog_capacity=100)
        for hour in range(5):
            for i in range(3):
                store.insert_one("visits", {"patient": f"p{hour}-{i}"})
            clock.advance(3600)
        store.delete_many("visits", {"patient": "p0-0"})
        return store

    def test_capture_disk_artifacts(self):
        store = self.loaded_store()
        artifacts = capture_disk(store)
        assert artifacts.oplog_entries
        assert "visits" in artifacts.collection_ids

    def test_creation_times_recoverable_from_ids_alone(self):
        """The paper's 'even without this log' leak."""
        store = self.loaded_store()
        artifacts = capture_disk(store)
        timeline = creation_times_from_ids(artifacts.collection_ids["visits"])
        times = [t for _, t in timeline]
        assert times == sorted(times)
        assert times[-1] - times[0] >= 4 * 3600  # the workload's time span

    def test_oplog_history_reconstruction(self):
        store = self.loaded_store()
        artifacts = capture_disk(store)
        lines = reconstruct_oplog_history(artifacts.oplog_entries)
        assert any("INSERT" in line for line in lines)
        assert any("DELETE" in line for line in lines)

    def test_namespace_filtered_history(self):
        store = self.loaded_store()
        lines = reconstruct_oplog_history(store.oplog.entries, namespace="app.none")
        assert lines == []

    def test_write_rate_timeline(self):
        store = self.loaded_store()
        timeline = write_rate_timeline(store.oplog.entries, bucket_seconds=3600)
        assert sum(timeline.values()) == store.oplog.num_entries
        assert len(timeline) >= 4  # the workload spanned 5 hourly buckets

    def test_bad_bucket_rejected(self):
        with pytest.raises(ForensicsError):
            write_rate_timeline([], bucket_seconds=0)

"""MVCC engine semantics: snapshots, conflicts, chains, loud failure."""

import pytest

from repro.engine import StorageEngine, Transaction
from repro.errors import (
    ConcurrentTransactionError,
    EngineError,
    TransactionError,
    WriteConflictError,
)
from repro.server.sharding import ShardedEngine


def make_engine(**kwargs):
    engine = StorageEngine(binlog_enabled=True, **kwargs)
    engine.register_table("t")
    return engine


class TestSnapshotReads:
    def test_reader_does_not_see_uncommitted_write(self):
        engine = make_engine()
        writer = engine.begin()
        engine.insert(writer, "t", 1, b"secret")
        value, _ = engine.get("t", 1)  # autocommit read
        assert value is None
        reader = engine.begin()
        value, _ = engine.get("t", 1, txn=reader)
        assert value is None

    def test_read_your_own_writes(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"mine")
        value, _ = engine.get("t", 1, txn=txn)
        assert value == b"mine"

    def test_repeatable_snapshot_read(self):
        engine = make_engine()
        txn = engine.begin()
        writer = engine.begin()
        engine.insert(writer, "t", 5, b"late")
        engine.commit(writer)
        # Committed after the reader's snapshot: still invisible.
        value, _ = engine.get("t", 5, txn=txn)
        assert value is None
        # A transaction begun after the commit sees it.
        later = engine.begin()
        value, _ = engine.get("t", 5, txn=later)
        assert value == b"late"

    def test_uncommitted_update_rolls_back_to_before_image(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        writer = engine.begin()
        engine.update(writer, "t", 1, b"v2")
        value, _ = engine.get("t", 1)
        assert value == b"v1"
        value, _ = engine.get("t", 1, txn=writer)
        assert value == b"v2"

    def test_concurrently_deleted_row_still_visible_to_old_snapshot(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.insert(setup, "t", 2, b"v2")
        engine.commit(setup)
        reader = engine.begin()
        deleter = engine.begin()
        engine.delete(deleter, "t", 1)
        entries, _ = engine.full_scan("t", txn=reader)
        assert entries == [(1, b"v1"), (2, b"v2")]
        # The deleter itself no longer sees the row.
        entries, _ = engine.full_scan("t", txn=deleter)
        assert entries == [(2, b"v2")]

    def test_range_is_snapshot_filtered(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"a")
        engine.commit(setup)
        reader = engine.begin()
        writer = engine.begin()
        engine.insert(writer, "t", 2, b"b")
        entries, _ = engine.range("t", 1, 10, txn=reader)
        assert entries == [(1, b"a")]

    def test_maintenance_scan_sees_raw_tree(self):
        # scan() is the forensic path: uncommitted writes included.
        engine = make_engine()
        writer = engine.begin()
        engine.insert(writer, "t", 1, b"dirty")
        assert engine.scan("t") == [(1, b"dirty")]


class TestFirstWriterWins:
    def test_second_writer_conflicts_on_uncommitted_row(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        first = engine.begin()
        second = engine.begin()
        engine.update(first, "t", 1, b"first")
        with pytest.raises(WriteConflictError):
            engine.update(second, "t", 1, b"second")

    def test_conflict_with_commit_after_snapshot(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        late = engine.begin()
        fast = engine.begin()
        engine.update(fast, "t", 1, b"fast")
        engine.commit(fast)
        with pytest.raises(WriteConflictError):
            engine.update(late, "t", 1, b"late")

    def test_conflict_raises_before_any_mutation(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        first = engine.begin()
        engine.update(first, "t", 1, b"first")
        redo_before = engine.redo_log.num_records
        second = engine.begin()
        with pytest.raises(WriteConflictError):
            engine.update(second, "t", 1, b"second")
        assert engine.redo_log.num_records == redo_before
        assert second.num_changes == 0

    def test_winner_commits_cleanly_after_loser_aborts(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        first = engine.begin()
        second = engine.begin()
        engine.update(first, "t", 1, b"first")
        with pytest.raises(WriteConflictError):
            engine.update(second, "t", 1, b"second")
        engine.rollback(second)
        engine.commit(first)
        value, _ = engine.get("t", 1)
        assert value == b"first"

    def test_non_conflicting_rows_interleave_freely(self):
        engine = make_engine()
        t1 = engine.begin()
        t2 = engine.begin()
        engine.insert(t1, "t", 1, b"one")
        engine.insert(t2, "t", 2, b"two")
        engine.commit(t1)
        engine.commit(t2)
        entries, _ = engine.full_scan("t")
        assert entries == [(1, b"one"), (2, b"two")]


class TestRollback:
    def test_interleaved_rollback_restores_only_own_writes(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v1")
        engine.commit(setup)
        loser = engine.begin()
        engine.update(loser, "t", 1, b"loser")
        bystander = engine.begin()
        engine.insert(bystander, "t", 2, b"bystander")
        engine.rollback(loser)
        engine.commit(bystander)
        entries, _ = engine.full_scan("t")
        assert entries == [(1, b"v1"), (2, b"bystander")]

    def test_rollback_drops_version_chain_entries(self):
        engine = make_engine()
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"x")
        assert engine.mvcc.chain_length("t", 1) == 1
        engine.rollback(txn)
        assert engine.mvcc.chain_length("t", 1) == 0


class TestChainTruncation:
    def test_fully_committed_chains_vanish_without_active_txns(self):
        engine = make_engine()
        for value in (b"a", b"b", b"c"):
            txn = engine.begin()
            if value == b"a":
                engine.insert(txn, "t", 1, value)
            else:
                engine.update(txn, "t", 1, value)
            engine.commit(txn)
        assert engine.mvcc.num_chains == 0
        assert engine.mvcc_chain_stats() == ()

    def test_history_retained_for_oldest_active_snapshot(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"old")
        engine.commit(setup)
        oldie = engine.begin()  # pins the snapshot horizon
        writer = engine.begin()
        engine.update(writer, "t", 1, b"new")
        engine.commit(writer)
        value, _ = engine.get("t", 1, txn=oldie)
        assert value == b"old"
        assert engine.mvcc.chain_length("t", 1) >= 1
        engine.commit(oldie)
        # Horizon released: the committed chain is gone.
        assert engine.mvcc.num_chains == 0

    def test_chain_stats_report_contention(self):
        engine = make_engine()
        setup = engine.begin()
        engine.insert(setup, "t", 1, b"v")
        engine.commit(setup)
        reader = engine.begin()
        writer = engine.begin()
        engine.update(writer, "t", 1, b"w")
        (stat,) = engine.mvcc_chain_stats()
        assert (stat.table, stat.key) == ("t", 1)
        assert stat.uncommitted == 1
        assert stat.length >= 1
        engine.commit(writer)
        engine.commit(reader)


class TestNonMvccLoudFailure:
    def test_second_transaction_raises(self):
        engine = StorageEngine(mvcc=False)
        engine.register_table("t")
        first = engine.begin()
        with pytest.raises(ConcurrentTransactionError):
            engine.begin()
        engine.commit(first)
        engine.begin()  # fine again after the first finishes

    def test_rollback_also_releases_the_slot(self):
        engine = StorageEngine(mvcc=False)
        engine.register_table("t")
        first = engine.begin()
        engine.rollback(first)
        engine.begin()

    def test_ddl_does_not_occupy_the_slot(self):
        engine = StorageEngine(mvcc=False, binlog_enabled=True)
        engine.register_table("t")
        txn = engine.begin()
        engine.log_ddl(0, "CREATE TABLE other (id INT PRIMARY KEY)")
        engine.commit(txn)
        assert engine.begin() is not None

    def test_mvcc_engine_allows_many(self):
        engine = make_engine()
        txns = [engine.begin() for _ in range(10)]
        for txn in txns:
            engine.commit(txn)


class TestShardedMvccEdges:
    """Satellite: conflicts across shard-boundary keys."""

    def make_sharded(self, num_shards=4):
        engine = ShardedEngine(num_shards=num_shards, binlog_enabled=True)
        engine.register_table("t")
        return engine

    def boundary_keys(self, engine, count=6):
        """Disjoint consecutive-key pairs that land on *different* shards."""
        pairs = []
        key = 0
        while key < 1000 and len(pairs) < count:
            if engine.shard_of(key) != engine.shard_of(key + 1):
                pairs.append((key, key + 1))
                key += 2  # keep pairs disjoint
            else:
                key += 1
        assert len(pairs) == count
        return pairs

    def test_same_key_conflicts_across_global_txns(self):
        engine = self.make_sharded()
        setup = engine.begin()
        engine.insert(setup, "t", 7, b"v")
        engine.commit(setup)
        first = engine.begin()
        second = engine.begin()
        engine.update(first, "t", 7, b"a")
        with pytest.raises(WriteConflictError):
            engine.update(second, "t", 7, b"b")

    def test_adjacent_keys_on_different_shards_do_not_conflict(self):
        engine = self.make_sharded()
        for low, high in self.boundary_keys(engine):
            t1 = engine.begin()
            t2 = engine.begin()
            engine.insert(t1, "t", low, b"low")
            engine.insert(t2, "t", high, b"high")
            engine.commit(t1)
            engine.commit(t2)
        entries, _ = engine.full_scan("t")
        assert len(entries) == 2 * len(self.boundary_keys(engine))

    def test_cross_shard_txn_conflict_aborts_all_branches(self):
        engine = self.make_sharded()
        (low, high) = self.boundary_keys(engine, count=1)[0]
        setup = engine.begin()
        engine.insert(setup, "t", low, b"l")
        engine.insert(setup, "t", high, b"h")
        engine.commit(setup)
        winner = engine.begin()
        engine.update(winner, "t", high, b"winner")
        loser = engine.begin()
        engine.update(loser, "t", low, b"loser-ok")  # different shard: fine
        with pytest.raises(WriteConflictError):
            engine.update(loser, "t", high, b"loser-conflict")
        engine.rollback(loser)  # must undo the shard-low branch too
        engine.commit(winner)
        entries, _ = engine.full_scan("t")
        assert dict(entries) == {low: b"l", high: b"winner"}

    def test_touched_shard_snapshot_is_stable(self):
        engine = self.make_sharded()
        (low, high) = self.boundary_keys(engine, count=1)[0]
        setup = engine.begin()
        engine.insert(setup, "t", low, b"l")
        engine.commit(setup)
        reader = engine.begin()
        # First touch pins this shard's snapshot for the reader.
        value, _ = engine.get("t", low, txn=reader)
        assert value == b"l"
        writer = engine.begin()
        engine.update(writer, "t", low, b"l2")
        engine.commit(writer)
        value, _ = engine.get("t", low, txn=reader)
        assert value == b"l"  # repeatable read on the pinned shard

    def test_untouched_shard_pins_lazily_read_skew(self):
        # Documented cross-shard anomaly: per-shard snapshots are pinned at
        # first touch, so a commit landing on a *not-yet-touched* shard is
        # visible — classic read skew of coordinator-less sharding.
        engine = self.make_sharded()
        (low, high) = self.boundary_keys(engine, count=1)[0]
        setup = engine.begin()
        engine.insert(setup, "t", low, b"l")
        engine.commit(setup)
        reader = engine.begin()
        value, _ = engine.get("t", low, txn=reader)  # pins low's shard only
        assert value == b"l"
        writer = engine.begin()
        engine.insert(writer, "t", high, b"h")
        engine.commit(writer)
        entries, _ = engine.full_scan("t", txn=reader)
        assert entries == [(low, b"l"), (high, b"h")]


class TestTransactionState:
    def test_finished_transaction_rejects_reuse(self):
        engine = make_engine()
        txn = engine.begin()
        engine.commit(txn)
        with pytest.raises(TransactionError):
            engine.commit(txn)
        with pytest.raises(TransactionError):
            txn.record_statement("SELECT 1")

    def test_unknown_table_still_raises(self):
        engine = make_engine()
        txn = engine.begin()
        with pytest.raises(EngineError):
            engine.insert(txn, "nope", 1, b"x")

    def test_txn_ids_unique_and_monotone(self):
        engine = make_engine()
        seen = [engine.begin().txn_id for _ in range(5)]
        assert seen == sorted(seen)
        assert len(set(seen)) == 5

"""Tests for the observability subsystem (repro.obs) and its leakage.

Covers the metrics registry's bucket semantics, span nesting, the
zero-cost-when-disabled guarantees, and — the point of the subsystem — that
a snapshot attacker recovers query digests and per-table access counts from
the trace artifact alone, including spans the ring already evicted.
"""

import pytest

from repro.clock import SimClock
from repro.errors import ObsError, SnapshotError
from repro.forensics import (
    carve_spans,
    extract_trace_report,
    parse_trace_store,
    recover_query_digests,
    recover_table_access_counts,
)
from repro.memory import SimulatedHeap
from repro.obs import (
    Histogram,
    Instrumentation,
    MetricsRegistry,
    SpanRecord,
    TraceStore,
    Tracer,
)
from repro.server import MySQLServer, ServerConfig
from repro.snapshot import AttackScenario, capture
from repro.sql.digest import digest


def _enabled_instr(**kwargs):
    return Instrumentation(enabled=True, clock=SimClock(), **kwargs)


# ---------------------------------------------------------------------------
# Histogram bucket semantics
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        hist = Histogram((100, 250, 500))
        hist.observe(100)  # le=100, Prometheus semantics
        hist.observe(100.1)  # first value above the boundary: next bucket
        assert hist.bucket_count(100) == 1
        assert hist.bucket_count(250) == 2

    def test_overflow_bucket(self):
        hist = Histogram((10,))
        hist.observe(11)
        assert hist.bucket_count(10) == 0
        assert hist.total == 1
        assert hist.counts[-1] == 1

    def test_bucket_counts_are_cumulative(self):
        hist = Histogram((1, 2, 3))
        for value in (0.5, 1.5, 2.5, 2.5):
            hist.observe(value)
        assert hist.bucket_count(1) == 1
        assert hist.bucket_count(2) == 2
        assert hist.bucket_count(3) == 4
        assert hist.sum == pytest.approx(7.0)

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ObsError):
            Histogram((1, 1, 2))
        with pytest.raises(ObsError):
            Histogram((5, 3))
        with pytest.raises(ObsError):
            Histogram(())

    def test_bucket_count_requires_a_boundary(self):
        hist = Histogram((1, 2))
        with pytest.raises(ObsError):
            hist.bucket_count(1.5)


class TestMetricsRegistry:
    def test_counters_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("reads")
        reg.inc("reads", n=2, label="patients")
        reg.inc("reads", label="visits")
        assert reg.counter_value("reads") == 1
        assert reg.counter_value("reads", label="patients") == 2
        assert reg.counter_by_label("reads") == {
            "": 1,
            "patients": 2,
            "visits": 1,
        }

    def test_as_dict_is_flat_and_cumulative(self):
        reg = MetricsRegistry()
        reg.inc("x", label="t")
        reg.set_gauge("g", 2.5)
        reg.histogram("h", bounds=(10, 20))
        reg.observe("h", 10)
        reg.observe("h", 15)
        dump = reg.as_dict()
        assert dump["x{t}"] == 1
        assert dump["g"] == 2.5
        assert dump["h_bucket{le=10}"] == 1
        assert dump["h_bucket{le=20}"] == 2  # cumulative
        assert dump["h_count"] == 2
        assert list(dump) == sorted(dump)

    def test_dump_text_one_line_per_series(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("b", n=3)
        assert reg.dump_text() == "a 1\nb 3\n"


# ---------------------------------------------------------------------------
# Span tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def _tracer(self, capacity=64):
        clock = SimClock()
        store = TraceStore(SimulatedHeap(), capacity)
        return Tracer(clock, store, MetricsRegistry()), store, clock

    def test_parent_child_nesting(self):
        tracer, store, _ = self._tracer()
        root = tracer.begin("query")
        with tracer.span("parse"):
            pass
        with tracer.span("execute"):
            with tracer.span("storage.get", table="t"):
                pass
        tracer.finish(root, detail="abc")
        spans = parse_trace_store(store.raw_bytes())
        by_name = {span.name: span for span in spans}
        assert by_name["query"].parent_id == 0
        assert by_name["query"].is_root
        assert by_name["parse"].parent_id == by_name["query"].span_id
        assert by_name["execute"].parent_id == by_name["query"].span_id
        assert by_name["storage.get"].parent_id == by_name["execute"].span_id
        assert len({span.trace_id for span in spans}) == 1
        assert by_name["query"].detail == "abc"

    def test_separate_roots_get_separate_traces(self):
        tracer, store, _ = self._tracer()
        for _ in range(3):
            with tracer.span("query"):
                pass
        spans = parse_trace_store(store.raw_bytes())
        assert len({span.trace_id for span in spans}) == 3

    def test_root_duration_covers_clock_advance(self):
        tracer, store, clock = self._tracer()
        root = tracer.begin("query")
        clock.advance(0.25)
        tracer.finish(root)
        (span,) = parse_trace_store(store.raw_bytes())
        assert span.duration == pytest.approx(0.25)

    def test_abandoned_children_are_unwound(self):
        tracer, store, _ = self._tracer()
        root = tracer.begin("query")
        tracer.begin("execute")  # never finished explicitly
        tracer.finish(root)
        assert tracer.open_spans == 0
        names = {span.name for span in parse_trace_store(store.raw_bytes())}
        assert names == {"query", "execute"}

    def test_finishing_a_closed_span_raises(self):
        tracer, _, _ = self._tracer()
        with tracer.span("query") as span:
            pass
        with pytest.raises(ObsError):
            tracer.finish(span)

    def test_span_record_roundtrip(self):
        record = SpanRecord(
            trace_id=7,
            span_id=8,
            parent_id=0,
            name="query",
            table="t",
            detail="deadbeef",
            started_at=1.5,
            duration=0.25,
        )
        parsed, offset = SpanRecord.from_bytes(record.to_bytes())
        assert parsed == record
        assert offset == len(record.to_bytes())


# ---------------------------------------------------------------------------
# Disabled mode: zero-cost no-ops
# ---------------------------------------------------------------------------


class TestDisabledMode:
    def test_span_returns_one_shared_noop(self):
        instr = Instrumentation.disabled()
        assert instr.span("a") is instr.span("b", table="t", detail="d")
        with instr.span("a"):
            pass  # usable as a context manager

    def test_all_surfaces_empty(self):
        instr = Instrumentation.disabled()
        instr.count("x")
        instr.observe("h", 1.0)
        instr.gauge("g", 2.0)
        instr.end_span(instr.begin_span("query"))
        assert instr.metrics_dump() == {}
        assert instr.trace_raw() == b""
        assert instr.trace_spans() == ()

    def test_disabled_server_memory_image_matches_baseline(self):
        """obs_enabled=False must be byte-identical to a default server."""

        def run(config):
            server = MySQLServer(config)
            session = server.connect()
            server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'x')")
            server.execute(session, "SELECT v FROM t WHERE id = 1")
            return server

        baseline = run(None)
        disabled = run(ServerConfig(obs_enabled=False))
        assert disabled.heap.snapshot() == baseline.heap.snapshot()
        assert disabled.heap.stats.total_allocs == baseline.heap.stats.total_allocs


# ---------------------------------------------------------------------------
# The leakage surface: trace store as snapshot artifact
# ---------------------------------------------------------------------------


def _run_workload(config):
    server = MySQLServer(config)
    session = server.connect()
    server.execute(
        session, "CREATE TABLE patients (id INT PRIMARY KEY, diag TEXT)"
    )
    server.execute(session, "CREATE TABLE visits (id INT PRIMARY KEY, day INT)")
    for i in range(6):
        server.execute(
            session,
            f"INSERT INTO patients (id, diag) VALUES ({i}, 'code {i}')",
        )
    for i in range(3):
        server.execute(session, f"INSERT INTO visits (id, day) VALUES ({i}, {i})")
    server.execute(session, "SELECT diag FROM patients WHERE id = 2")
    server.execute(session, "SELECT diag FROM patients WHERE id = 4")
    return server


class TestTraceLeakage:
    def test_digests_and_table_counts_recovered_from_trace_alone(self):
        server = _run_workload(ServerConfig(obs_enabled=True))
        snap = capture(server, AttackScenario.VM_SNAPSHOT)

        report = extract_trace_report(snap.require_obs_trace())
        # The SELECTs share one digest (same statement shape, different
        # literals); the INSERTs into each table share another.
        select_digest = digest("SELECT diag FROM patients WHERE id = 2")
        assert report.query_digests[select_digest] == 2
        insert_digest = digest("INSERT INTO patients (id, diag) VALUES (0, 'x')")
        assert report.query_digests[insert_digest] == 6
        # Per-table access counts: 6 inserts + 2 point reads vs 3 inserts.
        assert report.table_access_counts["patients"] == 8
        assert report.table_access_counts["visits"] == 3
        # 2 CREATEs + 9 INSERTs + 2 SELECTs, all within the default window.
        assert report.num_traces == 13
        assert len(report.query_durations) == sum(report.query_digests.values())

    def test_metrics_artifact_reports_per_table_totals(self):
        server = _run_workload(ServerConfig(obs_enabled=True))
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        metrics = snap.require_obs_metrics()
        assert metrics["engine.rows_written{patients}"] == 6
        assert metrics["engine.rows_written{visits}"] == 3
        assert metrics["engine.rows_read{patients}"] == 2
        assert metrics["server.statements"] == 13
        assert metrics["query.duration_us_count"] == 13

    def test_sql_injection_gets_metrics_but_not_trace(self):
        """The trace ring is an internal structure: escalation-gated (§5)."""
        server = _run_workload(ServerConfig(obs_enabled=True))
        snap = capture(server, AttackScenario.SQL_INJECTION)
        assert snap.obs_metrics is not None
        assert snap.obs_trace_raw is None
        with pytest.raises(SnapshotError):
            snap.require_obs_trace()
        escalated = capture(server, AttackScenario.SQL_INJECTION, escalated=True)
        assert escalated.obs_trace_raw is not None

    def test_disabled_server_has_no_obs_artifacts(self):
        server = _run_workload(None)
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        assert snap.obs_metrics is None
        assert snap.obs_trace_raw is None
        with pytest.raises(SnapshotError):
            snap.require_obs_metrics()


class TestTraceResidue:
    def test_evicted_spans_carved_from_memory_dump(self):
        """Eviction frees without zeroing: old traces persist as residue."""
        config = ServerConfig(obs_enabled=True, obs_trace_capacity=4)
        server = _run_workload(config)
        store = server.obs.trace_store
        assert store.total_evicted > 0
        assert store.num_records == 4

        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        carved = carve_spans(snap.require_memory_dump())
        retained = parse_trace_store(snap.require_obs_trace())
        assert len(carved) > len(retained)

        # Evicted traces still yield digests the bounded view lost.
        carved_digests = recover_query_digests(carved)
        retained_digests = recover_query_digests(retained)
        assert sum(carved_digests.values()) > sum(retained_digests.values())
        create_digest = digest(
            "CREATE TABLE patients (id INT PRIMARY KEY, diag TEXT)"
        )
        assert create_digest not in retained_digests  # evicted long ago
        assert create_digest in carved_digests  # ...but carved back

    def test_secure_delete_zeroes_evicted_spans(self):
        """The paper's missing countermeasure closes the residue channel."""
        config = ServerConfig(
            obs_enabled=True, obs_trace_capacity=4, secure_delete=True
        )
        server = _run_workload(config)
        assert server.obs.trace_store.total_evicted > 0
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        carved = recover_query_digests(carve_spans(snap.require_memory_dump()))
        retained = recover_query_digests(
            parse_trace_store(snap.require_obs_trace())
        )
        assert sum(carved.values()) == sum(retained.values())

    def test_clear_leaves_residue_unless_secure_delete(self):
        instr = _enabled_instr()
        with instr.span("query", detail="abc"):
            pass
        instr.trace_store.clear()
        assert instr.trace_raw() == b""
        carved = carve_spans(instr.trace_store._heap.snapshot())
        assert [span.name for span in carved] == ["query"]

    def test_table_access_counts_from_residue(self):
        """Carving beats the bounded view, though not totally: same-size
        reallocations do overwrite some evicted traces (heap reuse is the
        only "deletion" the allocator performs)."""
        config = ServerConfig(obs_enabled=True, obs_trace_capacity=2)
        server = _run_workload(config)
        snap = capture(server, AttackScenario.VM_SNAPSHOT)
        carved = recover_table_access_counts(
            carve_spans(snap.require_memory_dump())
        )
        retained = recover_table_access_counts(
            parse_trace_store(snap.require_obs_trace())
        )
        # The ring retains only the last 2 traces (the SELECTs); residue
        # still names tables from long-evicted INSERT traces.
        assert carved.get("patients", 0) > retained.get("patients", 0)
        assert carved.get("visits", 0) > retained.get("visits", 0)

import random

import pytest

from repro.errors import StorageError
from repro.storage.paged import (
    BufferPoolManager,
    PagedBTree,
    PagedTable,
    PageFile,
)
from repro.storage.paged.node import NO_PAGE, NEG_INF, InternalNode, LeafNode


def make_tree(capacity=64, payload_bytes=200):
    pool = BufferPoolManager(capacity=capacity)
    file = PageFile(None, "t", space_id=1)
    tree = PagedBTree(pool, file)
    return tree, pool, file


def big(value, payload_bytes=200):
    return (str(value) * payload_bytes)[:payload_bytes].encode()


def check_structure(tree, pool, file, expected_keys):
    """Walk the tree verifying separators, key ranges, and leaf chain."""

    def walk(pid, lo, hi):
        node = pool.read_node(file, pid)
        if isinstance(node, LeafNode):
            keys = [k for k, _ in node.entries]
            assert keys == sorted(keys)
            for k in keys:
                assert lo <= k and (hi is None or k < hi)
            return keys
        seps = [s for s, _ in node.entries]
        assert seps == sorted(seps), f"unsorted separators in page {pid}"
        collected = []
        for i, (sep, child) in enumerate(node.entries):
            child_hi = node.entries[i + 1][0] if i + 1 < len(node.entries) else hi
            collected += walk(child, max(lo, sep), child_hi)
        return collected

    assert walk(tree.root_page_id, NEG_INF, None) == sorted(expected_keys)
    # The leaf chain must agree with the in-order walk.
    chained = [k for k, _ in tree.scan()]
    assert chained == sorted(expected_keys)


class TestBasicOps:
    def test_insert_get(self):
        tree, pool, file = make_tree()
        tree.insert(5, b"five")
        payload, path = tree.get(5)
        assert payload == b"five"
        assert path.page_ids

    def test_get_missing(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"v")
        payload, _ = tree.get(2)
        assert payload is None

    def test_duplicate_rejected(self):
        tree, pool, _ = make_tree()
        tree.insert(1, b"v")
        with pytest.raises(StorageError, match="duplicate key 1"):
            tree.insert(1, b"w")
        assert pool.pinned_frames == 0

    def test_update(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"old")
        old, _ = tree.update(1, b"new")
        assert old == b"old"
        assert tree.get(1)[0] == b"new"

    def test_update_missing_rejected(self):
        tree, pool, _ = make_tree()
        with pytest.raises(StorageError, match="update of missing key 9"):
            tree.update(9, b"v")
        assert pool.pinned_frames == 0

    def test_delete(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"v")
        old, _ = tree.delete(1)
        assert old == b"v"
        assert tree.get(1)[0] is None
        assert tree.size == 0

    def test_delete_missing_rejected(self):
        tree, pool, _ = make_tree()
        with pytest.raises(StorageError, match="delete of missing key 3"):
            tree.delete(3)
        assert pool.pinned_frames == 0

    def test_no_pins_leak(self):
        tree, pool, _ = make_tree()
        for k in range(200):
            tree.insert(k, big(k))
        for k in range(0, 200, 3):
            tree.delete(k)
        for k in range(0, 200, 7):
            if k % 3:
                tree.update(k, b"u")
        tree.range(10, 150)
        assert pool.pinned_frames == 0


class TestSplitsAndStructure:
    def test_byte_budget_splits_grow_height(self):
        tree, pool, file = make_tree()
        for k in range(200):
            tree.insert(k, big(k))
        assert tree.height >= 2
        check_structure(tree, pool, file, list(range(200)))

    def test_random_order_inserts(self):
        tree, pool, file = make_tree()
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert(k, big(k))
        check_structure(tree, pool, file, keys)
        for k in keys:
            assert tree.get(k)[0] == big(k)

    def test_leaf_chain_bidirectional(self):
        tree, pool, file = make_tree()
        for k in range(300):
            tree.insert(k, big(k))
        # Forward walk via next_page, then check prev_page back-links.
        node = pool.read_node(file, tree.root_page_id)
        while isinstance(node, InternalNode):
            node = pool.read_node(file, node.entries[0][1])
        chain = [node.page_id]
        while node.next_page != NO_PAGE:
            prev_id = node.page_id
            node = pool.read_node(file, node.next_page)
            assert node.prev_page == prev_id
            chain.append(node.page_id)
        assert len(chain) == len(set(chain)) > 1

    def test_range_scan(self):
        tree, _, _ = make_tree()
        for k in range(0, 300, 2):
            tree.insert(k, big(k))
        results, path = tree.range(10, 40)
        assert [k for k, _ in results] == list(range(10, 41, 2))
        assert path.page_ids
        assert [k for k, _ in tree.range(None, 8)[0]] == [0, 2, 4, 6, 8]
        assert [k for k, _ in tree.range(294, None)[0]] == [294, 296, 298]


class TestDeletionReclaim:
    def test_emptied_leaf_unlinked_from_chain(self):
        tree, pool, file = make_tree()
        for k in range(100):
            tree.insert(k, big(k))
        height = tree.height
        assert height >= 2
        for k in range(100):
            tree.delete(k)
        assert tree.size == 0
        assert tree.height == 1
        assert tree.min_key() is None
        # All index pages except the root leaf went to the free list.
        free = set(file.free_list())
        assert len(free) >= 2
        assert tree.root_page_id not in free

    def test_churn_preserves_invariants(self):
        tree, pool, file = make_tree(capacity=32)
        rng = random.Random(5)
        live = {}
        for _ in range(1500):
            if live and rng.random() < 0.5:
                k = rng.choice(list(live))
                old, _ = tree.delete(k)
                assert old == live.pop(k)
            else:
                k = rng.randrange(250)
                if k in live:
                    continue
                tree.insert(k, big(k))
                live[k] = big(k)
        check_structure(tree, pool, file, list(live))
        assert pool.pinned_frames == 0

    def test_leftmost_spine_regression(self):
        # Regression for the unlink bug: removing the leftmost child of an
        # internal node (or promoting a non-leftmost node to root) must
        # rewrite the NEG_INF separator down the new leftmost spine,
        # otherwise later inserts land out of order.
        tree, pool, file = make_tree()
        for k in range(400):
            tree.insert(k, big(k))
        # Empty the leftmost leaves to force slot-0 unlinks.
        for k in range(150):
            tree.delete(k)
        for k in range(150):
            tree.insert(k, big(k))
        check_structure(tree, pool, file, list(range(400)))


class TestBulkLoad:
    def test_bulk_load_and_lookup(self):
        tree, pool, file = make_tree()
        n = 5000
        loaded = tree.bulk_load((k, big(k, 64)) for k in range(n))
        assert loaded == n
        assert tree.size == n
        for k in (0, 1, n // 2, n - 1):
            assert tree.get(k)[0] == big(k, 64)
        assert tree.get(n)[0] is None
        check_structure(tree, pool, file, list(range(n)))

    def test_bulk_load_requires_empty(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"v")
        with pytest.raises(StorageError, match="empty"):
            tree.bulk_load([(2, b"w")])

    def test_bulk_load_requires_sorted_unique(self):
        tree, _, _ = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(2, b"a"), (1, b"b")])

    def test_mutations_after_bulk_load(self):
        tree, pool, file = make_tree()
        tree.bulk_load((k, big(k, 64)) for k in range(0, 2000, 2))
        tree.insert(1, b"odd")
        old, _ = tree.delete(100)
        assert old == big(100, 64)
        keys = set(range(0, 2000, 2)) - {100} | {1}
        check_structure(tree, pool, file, list(keys))


class TestPersistence:
    def test_reopen_from_disk(self, tmp_path):
        path = str(tmp_path / "t.ibd")
        pool = BufferPoolManager(capacity=32)
        file = PageFile(path, "t", space_id=4)
        table = PagedTable(pool, file)
        for k in range(300):
            table.insert(k, big(k))
        pool.checkpoint()
        file.close()

        pool2 = BufferPoolManager(capacity=32)
        file2 = PageFile(path, "t")
        table2 = PagedTable(pool2, file2)
        assert table2.row_count == 300
        for k in (0, 150, 299):
            assert table2.get(k)[0] == big(k)
        file2.verify_all()
        file2.close()

    def test_secondary_index_survives_reopen(self, tmp_path):
        path = str(tmp_path / "t.ibd")
        pool = BufferPoolManager(capacity=32)
        file = PageFile(path, "t", space_id=4)
        table = PagedTable(pool, file)
        for k in range(100):
            table.insert(k, big(k))
        table.create_secondary_index("mod", lambda row: len(row) % 7)
        pool.checkpoint()
        file.close()

        pool2 = BufferPoolManager(capacity=32)
        file2 = PageFile(path, "t")
        table2 = PagedTable(pool2, file2)
        table2.create_secondary_index("mod", lambda row: len(row) % 7)
        pks, _ = table2.secondary_lookup("mod", 200 % 7)
        assert pks == list(range(100))
        file2.close()


class TestSecondaryIndexes:
    def extractor(self, row):
        return len(row)

    def test_postings_follow_mutations(self):
        tree, pool, file = make_tree()
        table = PagedTable(pool, file)
        table.create_secondary_index("by_len", self.extractor)
        table.insert(1, b"aa")
        table.insert(2, b"bb")
        table.insert(3, b"ccc")
        assert table.secondary_lookup("by_len", 2)[0] == [1, 2]
        assert table.secondary_lookup("by_len", 3)[0] == [3]

        table.update(1, b"dddd")
        assert table.secondary_lookup("by_len", 2)[0] == [2]
        assert table.secondary_lookup("by_len", 4)[0] == [1]

        table.delete(2)
        assert table.secondary_lookup("by_len", 2)[0] == []

    def test_backfill_on_existing_rows(self):
        tree, pool, file = make_tree()
        table = PagedTable(pool, file)
        for k in range(50):
            table.insert(k, b"x" * (k % 5 + 1))
        table.create_secondary_index("by_len", self.extractor)
        assert table.secondary_lookup("by_len", 3)[0] == list(range(2, 50, 5))

    def test_duplicate_index_name_rejected(self):
        tree, pool, file = make_tree()
        table = PagedTable(pool, file)
        table.create_secondary_index("i", self.extractor)
        with pytest.raises(StorageError):
            table.create_secondary_index("i", self.extractor)

    def test_secondary_range(self):
        tree, pool, file = make_tree()
        table = PagedTable(pool, file)
        table.create_secondary_index("by_len", self.extractor)
        for k in range(30):
            table.insert(k, b"y" * (k % 6 + 1))
        hits, _ = table.secondary_range("by_len", 2, 3)
        expected = [
            (length, [pk for pk in range(30) if pk % 6 + 1 == length])
            for length in (2, 3)
        ]
        assert hits == expected

import pytest

from repro.errors import BufferPoolError
from repro.storage.paged import BufferPoolManager, PageFile, PagedPageType
from repro.storage.paged.node import LeafNode


def make_file(space_id=1, name="t"):
    return PageFile(None, name, space_id=space_id)


def new_leaf(pool, file, entries=()):
    frame = pool.new_page(
        file, lambda pid: LeafNode(pid, [(k, v) for k, v in entries])
    )
    return frame


class TestFetchAndPin:
    def test_new_page_is_pinned_and_dirty(self):
        pool = BufferPoolManager(capacity=4)
        file = make_file()
        frame = new_leaf(pool, file)
        assert frame.pin_count == 1
        assert frame.dirty
        pool.unpin(frame)
        assert frame.pin_count == 0

    def test_fetch_hit_vs_miss_stats(self):
        pool = BufferPoolManager(capacity=4)
        file = make_file()
        frame = new_leaf(pool, file)
        pid = frame.page_id
        pool.unpin(frame, dirty=True)
        pool.flush_all()

        again = pool.fetch(file, pid)
        pool.unpin(again)
        assert pool.stats["hits"] == 1
        assert pool.stats["misses"] == 0

        pool.clear()
        cold = pool.fetch(file, pid)
        pool.unpin(cold)
        assert pool.stats["misses"] == 1

    def test_unpin_below_zero_rejected(self):
        pool = BufferPoolManager(capacity=4)
        file = make_file()
        frame = new_leaf(pool, file)
        pool.unpin(frame)
        with pytest.raises(BufferPoolError):
            pool.unpin(frame)


class TestEviction:
    def _fill(self, pool, file, count, payload=b"x" * 64):
        pids = []
        for i in range(count):
            frame = new_leaf(pool, file, [(i, payload)])
            pids.append(frame.page_id)
            pool.unpin(frame, dirty=True)
        return pids

    def test_capacity_is_enforced(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        self._fill(pool, file, 50)
        assert pool.stats["resident"] <= 8
        assert pool.stats["evictions"] >= 42

    def test_evicted_dirty_pages_are_written_back(self):
        pool = BufferPoolManager(capacity=4)
        file = make_file()
        pids = self._fill(pool, file, 12)
        # Every evicted page must be readable from disk with its contents.
        for i, pid in enumerate(pids):
            if not pool.contains(file.space_id, pid):
                image = file.read_page(pid)
                assert image.page_type is PagedPageType.INDEX_LEAF
        assert pool.stats["writebacks"] >= 8

    def test_pinned_frames_are_never_evicted(self):
        pool = BufferPoolManager(capacity=4)
        file = make_file()
        pinned = [new_leaf(pool, file, [(i, b"p")]) for i in range(4)]
        with pytest.raises(BufferPoolError, match="pinned"):
            new_leaf(pool, file, [(99, b"q")])
        for frame in pinned:
            pool.unpin(frame, dirty=True)
        extra = new_leaf(pool, file, [(99, b"q")])
        pool.unpin(extra, dirty=True)

    def test_lru_picks_least_recent(self):
        pool = BufferPoolManager(capacity=3, policy="lru")
        file = make_file()
        pids = self._fill(pool, file, 3)
        # Touch the first page so the second becomes the LRU victim.
        frame = pool.fetch(file, pids[0])
        pool.unpin(frame)
        self._fill(pool, file, 1)
        assert pool.contains(file.space_id, pids[0])
        assert not pool.contains(file.space_id, pids[1])

    def test_clock_policy_matches_capacity(self):
        pool = BufferPoolManager(capacity=8, policy="clock")
        file = make_file()
        self._fill(pool, file, 100)
        assert pool.stats["resident"] <= 8
        assert pool.stats["evictions"] >= 92

    def test_policies_preserve_contents(self):
        for policy in ("lru", "clock"):
            pool = BufferPoolManager(capacity=4, policy=policy)
            file = make_file()
            pids = self._fill(pool, file, 30)
            for i, pid in enumerate(pids):
                frame = pool.fetch(file, pid)
                assert frame.node.entries[0][0] == i
                pool.unpin(frame)

    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferPoolError):
            BufferPoolManager(capacity=4, policy="mru")


class TestEvictionCornerCases:
    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_all_frames_pinned_exact_error(self, policy):
        capacity = 4
        pool = BufferPoolManager(capacity=capacity, policy=policy)
        file = make_file()
        pinned = [new_leaf(pool, file, [(i, b"p")]) for i in range(capacity)]
        with pytest.raises(
            BufferPoolError,
            match=f"all {capacity} frames are pinned; cannot evict",
        ):
            new_leaf(pool, file, [(99, b"q")])
        # The failed install must not corrupt the pool: every original
        # frame is still resident and still holds its single pin.
        assert pool.stats["resident"] == capacity
        assert pool.stats["pinned"] == capacity
        for frame in pinned:
            assert frame.pin_count == 1
            pool.unpin(frame, dirty=True)

    def test_clock_hand_wraps_and_second_chances(self):
        # 8-frame budget, all resident frames with their reference bit
        # set: the hand's first full sweep may only clear bits, so the
        # victim is found on the wraparound sweep — and it is the frame
        # the hand started at, not an arbitrary one.
        pool = BufferPoolManager(capacity=8, policy="clock")
        file = make_file()
        pids = []
        for i in range(8):
            frame = new_leaf(pool, file, [(i, b"w")])
            pids.append(frame.page_id)
            pool.unpin(frame, dirty=True)
        for frame in pool.frames():
            assert frame.ref_bit  # install leaves the bit set
        extra = new_leaf(pool, file, [(99, b"q")])
        pool.unpin(extra, dirty=True)
        # The hand started at slot 0; two sweeps later slot 0's frame
        # (the first page) is the evicted victim.
        assert not pool.contains(file.space_id, pids[0])
        assert pool.stats["resident"] == 8
        assert pool.stats["evictions"] == 1
        # Survivors had their reference bit cleared by the first sweep.
        survivors = [f for f in pool.frames() if f.page_id != extra.page_id]
        assert all(not f.ref_bit for f in survivors)

    def test_clock_hand_skips_pinned_on_wraparound(self):
        pool = BufferPoolManager(capacity=8, policy="clock")
        file = make_file()
        held = new_leaf(pool, file, [(0, b"held")])  # slot 0, stays pinned
        pids = [held.page_id]
        for i in range(1, 8):
            frame = new_leaf(pool, file, [(i, b"w")])
            pids.append(frame.page_id)
            pool.unpin(frame, dirty=True)
        extra = new_leaf(pool, file, [(99, b"q")])
        pool.unpin(extra, dirty=True)
        # The pinned frame at the hand's starting slot survives; the next
        # unpinned frame in ring order is the one evicted.
        assert pool.contains(file.space_id, pids[0])
        assert not pool.contains(file.space_id, pids[1])
        pool.unpin(held, dirty=True)

    def test_wal_rule_log_flushed_before_page_write(self):
        # Regression for the WAL rule: the log_flusher hook must run
        # (and be given a covering LSN) strictly before the dirty page's
        # bytes reach the file — on eviction, flush, and checkpoint alike.
        events = []
        lsn = [100]
        pool = BufferPoolManager(
            capacity=4,
            lsn_source=lambda: lsn[0],
            log_flusher=lambda up_to: events.append(("log_flush", up_to)),
        )
        file = make_file()
        real_write = file.write_page

        def recording_write(page_id, image):
            events.append(("page_write", page_id))
            return real_write(page_id, image)

        file.write_page = recording_write

        frame = new_leaf(pool, file, [(1, b"v")])
        assert frame.rec_lsn == 100  # stamped on the clean->dirty edge
        lsn[0] = 250
        pool.unpin(frame, dirty=True)  # re-dirty: page-LSN advances to 250
        lsn[0] = 999  # the clock moves on, but the page does not
        pool.flush_page(file, frame.page_id)

        assert [kind for kind, _ in events] == ["log_flush", "page_write"]
        # The flush target is the frame's own page-LSN, not the engine's
        # end LSN — flushing to 999 on every write-back would force a full
        # log flush regardless of what the log already covers.
        assert events[0][1] == 250
        assert file.read_page(frame.page_id).page_lsn == 250
        assert not frame.dirty and frame.rec_lsn == 0

        # Checkpoint obeys the same ordering for every dirty frame.
        events.clear()
        pool.mark_dirty(frame)
        pool.checkpoint()
        kinds = [kind for kind, _ in events]
        assert kinds.index("log_flush") < kinds.index("page_write")

    def test_rec_lsn_sticks_to_first_dirtier(self):
        # Re-dirtying an already-dirty frame must not advance rec_lsn:
        # redo has to reach back to the *first* unflushed change.
        lsn = [7]
        pool = BufferPoolManager(capacity=4, lsn_source=lambda: lsn[0])
        file = make_file()
        frame = new_leaf(pool, file, [(1, b"v")])
        assert frame.rec_lsn == 7
        lsn[0] = 90
        pool.mark_dirty(frame)
        assert frame.rec_lsn == 7
        assert frame.page_lsn == 90  # ...while page-LSN tracks the latest
        assert pool.dirty_page_table() == ((file.name, frame.page_id, 7),)
        pool.unpin(frame, dirty=True)


class TestFlushAndCheckpoint:
    def test_flush_all_clears_dirty(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        frame = new_leaf(pool, file, [(1, b"v")])
        pool.unpin(frame, dirty=True)
        pool.flush_all()
        assert all(not f.dirty for f in pool.frames())
        assert file.read_page(frame.page_id).n_entries == 1

    def test_checkpoint_stamps_header_lsn(self):
        lsn = [50]
        pool = BufferPoolManager(capacity=8, lsn_source=lambda: lsn[0])
        file = make_file()
        frame = new_leaf(pool, file, [(1, b"v")])
        pool.unpin(frame, dirty=True)
        lsn[0] = 77
        pool.checkpoint()
        assert file.checkpoint_lsn == 77
        # The page image carries its own last-dirty LSN, not the clock's.
        assert file.read_page(frame.page_id).page_lsn == 50

    def test_free_page_drops_without_writeback(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        frame = new_leaf(pool, file, [(1, b"old-bytes")])
        pid = frame.page_id
        pool.unpin(frame, dirty=True)
        pool.flush_all()
        # Dirty the frame again, then free: the *flushed* image must survive.
        frame = pool.fetch(file, pid)
        frame.node.entries[0] = (1, b"new-bytes")
        pool.unpin(frame, dirty=True)
        pool.free_page(file, pid)
        image = file.read_page(pid)
        assert image.page_type is PagedPageType.FREE
        assert b"old-bytes" in image.payload
        assert b"new-bytes" not in image.payload

    def test_free_pinned_page_rejected(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        frame = new_leaf(pool, file)
        with pytest.raises(BufferPoolError):
            pool.free_page(file, frame.page_id)
        pool.unpin(frame, dirty=True)

    def test_clear_with_pins_rejected(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        frame = new_leaf(pool, file)
        with pytest.raises(BufferPoolError):
            pool.clear()
        pool.unpin(frame, dirty=True)
        pool.clear()
        assert pool.stats["resident"] == 0


class TestDump:
    def test_dump_reflects_resident_frames_mru_first(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file(space_id=5)
        pids = []
        for i in range(3):
            frame = new_leaf(pool, file, [(i, b"v")])
            pids.append(frame.page_id)
            pool.unpin(frame, dirty=True)
        dump = pool.dump()
        assert [ref.page_id for ref in dump.entries] == list(reversed(pids))
        assert all(ref.space_id == 5 for ref in dump.entries)

    def test_dump_identical_across_policies(self):
        refs = {}
        for policy in ("lru", "clock"):
            pool = BufferPoolManager(capacity=8, policy=policy)
            file = make_file()
            for i in range(6):
                frame = new_leaf(pool, file, [(i, b"v")])
                pool.unpin(frame, dirty=True)
            for pid in (2, 4):
                frame = pool.fetch(file, pid)
                pool.unpin(frame)
            refs[policy] = [(r.space_id, r.page_id) for r in pool.dump().entries]
        assert refs["lru"] == refs["clock"]

    def test_read_node_does_not_touch_recency(self):
        pool = BufferPoolManager(capacity=8)
        file = make_file()
        frame = new_leaf(pool, file, [(1, b"v")])
        pid = frame.page_id
        pool.unpin(frame, dirty=True)
        before = [r.page_id for r in pool.lru_order()]
        hits = pool.stats["hits"]
        node = pool.read_node(file, pid)
        assert node.entries[0][0] == 1
        assert [r.page_id for r in pool.lru_order()] == before
        assert pool.stats["hits"] == hits

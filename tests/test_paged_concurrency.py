"""Paged storage under the concurrent front end (satellite of ROADMAP 2).

Runs the sharded engine in paged mode with a deliberately tiny frame
budget so eviction happens *during* the concurrent workload, then checks
the pool discipline held (no pins leaked, dirty pages written back — every
committed row is readable back from actual page files) and that the
scheduler front end leaves byte-identical artifacts to a serial run, paged
artifacts included.
"""

from repro.server import ServerConfig

from tests.harness import (
    artifact_fingerprint,
    round_robin_scripts,
    run_frontend,
    run_serial,
)

SETUP = ["CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"]

#: Fat rows (~400 bytes) so a handful of rows fills a 4 KB page and an
#: 8-frame budget per shard forces eviction mid-workload.
PAD = 400


def paged_config(**kw):
    return ServerConfig(
        storage="paged",
        buffer_pool_capacity=kw.pop("buffer_pool_capacity", 8),
        **kw,
    )


def write_heavy_statements(n=240):
    statements = []
    for i in range(n):
        payload = format(i, "d").rjust(PAD, "x")
        statements.append(f"INSERT INTO t (id, v) VALUES ({i}, '{payload}')")
    for i in range(0, n, 4):
        payload = format(i * 5, "d").rjust(PAD, "u")
        statements.append(f"UPDATE t SET v = '{payload}' WHERE id = {i}")
    for i in range(0, n, 9):
        statements.append(f"DELETE FROM t WHERE id = {i}")
    return statements


def pool_stats(server):
    """Frame-pool stats; the sharded engine merges per-shard pools."""
    return server.engine.buffer_pool.stats


class TestEvictionUnderConcurrency:
    def test_tiny_pool_evicts_but_stays_consistent(self):
        scripts = round_robin_scripts(write_heavy_statements(), 6)
        server = run_serial(scripts, setup=SETUP, config=paged_config(num_shards=4))
        stats = pool_stats(server)
        assert stats["evictions"] > 0, "8-frame budget must force eviction"
        assert stats["pinned"] == 0, "no operation may leak a pin"
        assert stats["writebacks"] > 0

        # Dirty-page write-back correctness: flush everything, then read
        # every surviving row back from the on-disk page files.
        engine = server.engine
        engine.checkpoint()
        survivors = dict(engine.scan("t"))
        engine.buffer_pool.clear()
        assert dict(engine.scan("t")) == survivors

    def test_deep_eviction_via_frontend(self):
        scripts = round_robin_scripts(write_heavy_statements(), 6)
        server, frontend = run_frontend(
            scripts, setup=SETUP, config=paged_config(num_shards=4)
        )
        stats = pool_stats(server)
        assert stats["evictions"] > 0
        assert stats["pinned"] == 0
        assert len(frontend.completed) == sum(len(s) for s in scripts)


class TestSerialFrontendEquivalence:
    def test_artifacts_byte_identical_paged(self):
        scripts = round_robin_scripts(write_heavy_statements(), 6)
        config = paged_config(num_shards=4)
        serial = run_serial(scripts, setup=SETUP, config=config)
        concurrent, _ = run_frontend(scripts, setup=SETUP, config=config)
        serial_fp = artifact_fingerprint(serial)
        concurrent_fp = artifact_fingerprint(concurrent)
        assert set(serial_fp) == set(concurrent_fp)
        diffs = [
            name
            for name in serial_fp
            if serial_fp[name] != concurrent_fp[name]
        ]
        assert not diffs, f"artifacts diverged between serial/frontend: {diffs}"
        # The paged-only artifacts must actually be part of the comparison.
        for name in ("tablespace_file", "page_free_list", "checkpoint_lsn"):
            assert name in serial_fp

    def test_artifacts_byte_identical_single_engine_paged(self):
        scripts = round_robin_scripts(write_heavy_statements(80), 3)
        config = paged_config()
        serial_fp = artifact_fingerprint(
            run_serial(scripts, setup=SETUP, config=config)
        )
        concurrent_fp = artifact_fingerprint(
            run_frontend(scripts, setup=SETUP, config=config)[0]
        )
        assert serial_fp == concurrent_fp

import os

import pytest

from repro.engine import StorageEngine
from repro.errors import EngineError
from repro.server import MySQLServer, ServerConfig
from repro.snapshot import AttackScenario, capture
from repro.storage.paged import PAGED_PAGE_SIZE


def paged_engine(**kwargs):
    return StorageEngine(storage="paged", mvcc=kwargs.pop("mvcc", True), **kwargs)


class TestEngineModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(EngineError, match="unknown storage mode"):
            StorageEngine(storage="flash")

    def test_memory_default_has_no_data_dir(self):
        engine = StorageEngine()
        assert engine.storage_mode == "memory"
        assert engine.data_dir is None
        assert engine.free_list_info() == {}
        assert engine.checkpoint_lsns() == {}

    def test_paged_mode_creates_tempdir(self):
        engine = paged_engine()
        assert engine.storage_mode == "paged"
        assert engine.data_dir is not None
        engine.register_table("t")
        assert os.path.exists(os.path.join(engine.data_dir, "t.ibd"))
        engine.close()

    def test_paged_only_apis_guarded_in_memory_mode(self):
        engine = StorageEngine()
        engine.register_table("t")
        with pytest.raises(EngineError):
            engine.bulk_load("t", [(1, b"v")])
        with pytest.raises(EngineError):
            engine.register_secondary_index("t", "i", len)


class TestPagedTransactions:
    def test_insert_commit_read(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"hello")
        engine.commit(txn)
        value, _ = engine.get("t", 1)
        assert value == b"hello"
        engine.close()

    def test_rollback_restores_tree(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"keep")
        engine.commit(txn)

        txn = engine.begin()
        engine.insert(txn, "t", 2, b"drop")
        engine.update(txn, "t", 1, b"mutated")
        engine.rollback(txn)

        assert engine.get("t", 1)[0] == b"keep"
        assert engine.get("t", 2)[0] is None
        engine.close()

    def test_range_and_scan(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        for k in range(50):
            engine.insert(txn, "t", k, f"row-{k}".encode())
        engine.commit(txn)
        entries, _ = engine.range("t", 10, 14)
        assert [k for k, _ in entries] == [10, 11, 12, 13, 14]
        assert len(engine.scan("t")) == 50
        engine.close()


class TestPagedMaintenance:
    def test_tablespace_images_are_page_aligned(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        for k in range(20):
            engine.insert(txn, "t", k, b"x" * 100)
        engine.commit(txn)
        images = engine.tablespace_images()
        assert set(images) == {"t"}
        assert len(images["t"]) % PAGED_PAGE_SIZE == 0
        engine.close()

    def test_checkpoint_persists_lsn(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"v")
        engine.commit(txn)
        lsn = engine.checkpoint()
        assert lsn > 0
        assert engine.checkpoint_lsns() == {"t": lsn}
        engine.close()

    def test_free_list_grows_on_delete_churn(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        for k in range(200):
            engine.insert(txn, "t", k, b"x" * 200)
        engine.commit(txn)
        txn = engine.begin()
        for k in range(150):
            engine.delete(txn, "t", k)
        engine.commit(txn)
        info = engine.free_list_info()
        assert info["t"], "emptied leaves should populate the free list"
        engine.close()

    def test_deleted_rows_leave_residue_after_checkpoint(self):
        engine = paged_engine()
        engine.register_table("t")
        txn = engine.begin()
        for k in range(100):
            engine.insert(txn, "t", k, f"SECRET-{k:03d}".encode() * 10)
        engine.commit(txn)
        engine.checkpoint()
        txn = engine.begin()
        for k in range(100):
            engine.delete(txn, "t", k)
        engine.commit(txn)
        blob = engine.tablespace_images()["t"]
        assert b"SECRET-007" in blob, "freed pages must keep pre-delete bytes"
        engine.close()

    def test_bulk_load_and_secondary(self):
        engine = paged_engine(mvcc=False)
        engine.register_table("t")
        n = 2000
        assert engine.bulk_load(
            "t", ((k, b"p" * (50 + k % 10)) for k in range(n))
        ) == n
        assert engine.get("t", n - 1)[0] == b"p" * 59
        engine.register_secondary_index("t", "by_len", len)
        pks, _ = engine.secondary_lookup("t", "by_len", 53)
        assert pks == list(range(3, n, 10))
        engine.close()

    def test_dump_comes_from_resident_frames(self):
        engine = paged_engine(buffer_pool_capacity=8)
        engine.register_table("t")
        txn = engine.begin()
        for k in range(300):
            engine.insert(txn, "t", k, b"z" * 200)
        engine.commit(txn)
        dump = engine.buffer_pool.dump()
        assert 0 < len(dump.entries) <= 8
        assert engine.buffer_pool.stats["evictions"] > 0
        engine.close()


class TestServerPaged:
    def config(self, **kw):
        return ServerConfig(storage="paged", **kw)

    def test_sql_roundtrip(self):
        server = MySQLServer(self.config())
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        result = server.execute(session, "SELECT v FROM t WHERE id = 2")
        assert list(result.rows) == [(20,)]
        server.execute(session, "DELETE FROM t WHERE id = 1")
        result = server.execute(session, "SELECT id, v FROM t")
        assert list(result.rows) == [(2, 20)]
        server.close()

    def test_paged_artifacts_registered_in_snapshot(self):
        server = MySQLServer(self.config())
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
        assert "tablespace_file" in snap.artifacts
        assert "page_free_list" in snap.artifacts
        assert "checkpoint_lsn" in snap.artifacts
        blob = snap.artifacts["tablespace_file"]["t"]
        assert len(blob) % PAGED_PAGE_SIZE == 0
        server.close()

    def test_paged_artifacts_skipped_in_memory_mode(self):
        server = MySQLServer(ServerConfig())
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
        assert "tablespace_file" not in snap.artifacts
        assert "page_free_list" not in snap.artifacts
        assert "checkpoint_lsn" not in snap.artifacts

    def test_secondary_index_through_server(self):
        server = MySQLServer(self.config())
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(
            session, "INSERT INTO t (id, v) VALUES (1, 5), (2, 5), (3, 6)"
        )
        name = server.create_secondary_index("t", "v")
        assert name == "idx_t_v"
        assert server.secondary_lookup("t", "v", 5) == [1, 2]
        assert server.secondary_lookup("t", "v", 6) == [3]
        server.close()

    def test_explicit_data_dir(self, tmp_path):
        data_dir = str(tmp_path / "pages")
        server = MySQLServer(self.config(data_dir=data_dir))
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        server.close()
        assert os.path.exists(os.path.join(data_dir, "t.ibd"))

    def test_clock_policy_through_config(self):
        server = MySQLServer(
            self.config(buffer_pool_policy="clock", buffer_pool_capacity=8)
        )
        session = server.connect("app")
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for start in range(0, 500, 100):
            values = ", ".join(f"({i}, {i})" for i in range(start, start + 100))
            server.execute(session, f"INSERT INTO t (id, v) VALUES {values}")
        assert server.engine.buffer_pool.stats["resident"] <= 8
        server.close()

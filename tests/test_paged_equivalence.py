"""Memory-vs-paged equivalence: the storage mode must not leak upward.

The paged engine replaces the storage substrate underneath the engine's
write path, so everything derived *above* storage — redo/undo logs, binlog,
statement digests, diagnostic tables, the E5b adaptive-hash ranking — must
be byte-identical between ``storage="memory"`` and ``storage="paged"`` for
the same workload. Storage-layer artifacts (tablespace bytes, buffer-pool
dump) legitimately differ and are excluded.
"""

import hashlib

from repro.experiments.e02_retention import run_log_retention
from repro.experiments.e04_bufferpool import run_buffer_pool_paths
from repro.experiments.e05b_adaptive_hash import run_adaptive_hash_leak
from repro.server import MySQLServer, ServerConfig
from repro.snapshot import AttackScenario, capture

#: Artifacts allowed to differ between storage modes: the storage layer
#: itself, plus paged-only artifacts that do not exist in memory mode.
STORAGE_DEPENDENT = (
    "buffer_pool_dump",
    "live_buffer_pool",
    "tablespace_images",
    "tablespace_file",
    "page_free_list",
    "checkpoint_lsn",
    "dirty_page_table",
    "memory_dump",
)

WORKLOAD = [
    "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
    "INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 200), (3, 300)",
    "UPDATE accounts SET balance = 150 WHERE id = 1",
    "BEGIN",
    "UPDATE accounts SET balance = 175 WHERE id = 1",
    "ROLLBACK",
    "DELETE FROM accounts WHERE id = 2",
    "INSERT INTO accounts (id, balance) VALUES (4, 400)",
    "SELECT balance FROM accounts WHERE id = 1",
    "SELECT id, balance FROM accounts",
]


def run_workload(storage):
    server = MySQLServer(ServerConfig(storage=storage))
    session = server.connect("app")
    for statement in WORKLOAD:
        server.execute(session, statement)
    return server


def artifact_hashes(server, exclude=STORAGE_DEPENDENT):
    snap = capture(server, AttackScenario.FULL_COMPROMISE, escalated=True)
    return {
        name: hashlib.sha256(repr(snap.artifacts[name]).encode()).hexdigest()
        for name in sorted(snap.artifacts)
        if name not in exclude
    }


class TestLogLayerEquivalence:
    def test_same_workload_same_log_artifacts(self):
        memory = run_workload("memory")
        paged = run_workload("paged")
        mem_hashes = artifact_hashes(memory)
        paged_hashes = artifact_hashes(paged)
        assert mem_hashes == paged_hashes
        paged.close()

    def test_query_results_identical(self):
        results = {}
        for storage in ("memory", "paged"):
            server = MySQLServer(ServerConfig(storage=storage))
            session = server.connect("app")
            for statement in WORKLOAD[:-2]:
                server.execute(session, statement)
            rows = server.execute(
                session, "SELECT id, balance FROM accounts"
            ).rows
            results[storage] = list(rows)
            if storage == "paged":
                server.close()
        assert results["memory"] == results["paged"]


class TestExperimentEquivalence:
    def test_e2_retention_unaffected_by_paged_default(self):
        # E2 exercises the redo/undo ring buffers, which sit above storage;
        # a small run must produce the exact same retention measurements as
        # the committed memory-mode behaviour.
        result = run_log_retention(num_writes=400, capacity_bytes=24_000)
        assert result.reconstructed_fraction > 0
        assert result.prediction_error < 0.25

    def test_e4_runs_in_paged_mode(self):
        result = run_buffer_pool_paths(
            table_rows=600, num_selects=12, storage="paged"
        )
        # The frame pool's dump still recovers the most recent SELECT's
        # root-to-leaf path — the §3 inference the experiment reproduces.
        assert result.last_select_recovered
        assert result.paths_inferred >= 1

    def test_e5b_identical_across_modes(self):
        memory = run_adaptive_hash_leak(num_keys=25, num_lookups=400)
        paged = run_adaptive_hash_leak(
            num_keys=25, num_lookups=400, storage="paged"
        )
        assert memory == paged

import pytest

from repro.errors import PageError
from repro.storage.paged import (
    PAGE_CAPACITY,
    PAGE_HEADER_SIZE,
    PAGED_PAGE_SIZE,
    PageFile,
    PagedPageType,
)
from repro.storage.paged.format import NO_PAGE, checksum_of, pack_page, unpack_page


class TestPageImage:
    def test_roundtrip(self):
        raw = pack_page(7, PagedPageType.INDEX_LEAF, 0, 42, 3, 9, 2, b"payload")
        assert len(raw) == PAGED_PAGE_SIZE
        image = unpack_page(raw, expected_page_id=7)
        assert image.page_id == 7
        assert image.page_type is PagedPageType.INDEX_LEAF
        assert image.level == 0
        assert image.page_lsn == 42
        assert image.prev_page == 3
        assert image.next_page == 9
        assert image.n_entries == 2
        assert image.payload.startswith(b"payload")
        assert len(image.payload) == PAGE_CAPACITY

    def test_checksum_covers_payload(self):
        raw = pack_page(1, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 1, b"abc")
        corrupted = raw[:PAGE_HEADER_SIZE] + b"X" + raw[PAGE_HEADER_SIZE + 1 :]
        with pytest.raises(PageError, match="checksum mismatch"):
            unpack_page(corrupted)

    def test_checksum_covers_header_fields(self):
        raw = pack_page(1, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 1, b"abc")
        # Flip the level field (offset 10) without refreshing the checksum.
        corrupted = raw[:10] + b"\x05\x00" + raw[12:]
        with pytest.raises(PageError, match="checksum mismatch"):
            unpack_page(corrupted)

    def test_wrong_slot_detected(self):
        raw = pack_page(4, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"")
        with pytest.raises(PageError, match="claims id 4"):
            unpack_page(raw, expected_page_id=5)

    def test_oversized_payload_rejected(self):
        with pytest.raises(PageError, match="exceeds"):
            pack_page(1, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"x" * (PAGE_CAPACITY + 1))

    def test_bad_length_rejected(self):
        with pytest.raises(PageError, match="must be"):
            unpack_page(b"\x00" * 100)

    def test_checksum_of_skips_checksum_field(self):
        raw = pack_page(2, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"data")
        # Changing the stored checksum itself must not change the computed one.
        assert checksum_of(b"\xff" * 4 + raw[4:]) == checksum_of(raw)


class TestPageFile:
    def test_allocate_write_read(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=3)
        pid = file.allocate()
        assert pid != NO_PAGE
        raw = pack_page(pid, PagedPageType.INDEX_LEAF, 0, 1, 0, 0, 1, b"row")
        file.write_page(pid, raw)
        image = file.read_page(pid)
        assert image.payload.startswith(b"row")
        file.close()

    def test_header_page_zero_reserved(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=3)
        first = file.allocate()
        assert first >= 1
        with pytest.raises(PageError):
            file.read_page(0)

    def test_reopen_preserves_header(self, tmp_path):
        path = str(tmp_path / "t.ibd")
        file = PageFile(path, "t", space_id=9)
        pids = [file.allocate() for _ in range(4)]
        for pid in pids:
            file.write_page(
                pid, pack_page(pid, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"")
            )
        file.free(pids[1])
        file.clustered_root = pids[0]
        file.clustered_size = 17
        file.mark_header_dirty()
        file.flush_header()
        file.close()

        again = PageFile(path, "t")
        assert again.space_id == 9
        assert again.name == "t"
        assert again.num_pages == file.num_pages
        assert again.clustered_root == pids[0]
        assert again.clustered_size == 17
        assert again.free_list() == [pids[1]]
        again.close()

    def test_free_list_reuse(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=1)
        a = file.allocate()
        b = file.allocate()
        file.write_page(a, pack_page(a, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b""))
        file.write_page(b, pack_page(b, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b""))
        file.free(a)
        file.free(b)
        assert file.free_list() == [b, a]
        # LIFO reuse off the free-list head.
        assert file.allocate() == b
        assert file.allocate() == a
        assert file.free_list() == []

    def test_free_preserves_payload_residue(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=1)
        pid = file.allocate()
        secret = b"PLAINTEXT-SECRET-ROW"
        file.write_page(
            pid, pack_page(pid, PagedPageType.INDEX_LEAF, 0, 5, 0, 0, 1, secret)
        )
        file.free(pid)
        image = file.read_page(pid)
        assert image.page_type is PagedPageType.FREE
        # Only the header was rewritten: the row bytes are still carvable.
        assert secret in image.payload

    def test_to_bytes_page_aligned(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=1)
        for _ in range(3):
            pid = file.allocate()
            file.write_page(
                pid, pack_page(pid, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"")
            )
        blob = file.to_bytes()
        assert len(blob) % PAGED_PAGE_SIZE == 0
        assert len(blob) == file.num_pages * PAGED_PAGE_SIZE

    def test_verify_all(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=1)
        for _ in range(5):
            pid = file.allocate()
            file.write_page(
                pid, pack_page(pid, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"v")
            )
        file.verify_all()

    def test_out_of_range_read(self, tmp_path):
        file = PageFile(str(tmp_path / "t.ibd"), "t", space_id=1)
        with pytest.raises(PageError):
            file.read_page(99)

    def test_in_memory_file(self):
        file = PageFile(None, "mem", space_id=2)
        pid = file.allocate()
        file.write_page(
            pid, pack_page(pid, PagedPageType.INDEX_LEAF, 0, 0, 0, 0, 0, b"m")
        )
        assert file.read_page(pid).payload.startswith(b"m")
        file.close()

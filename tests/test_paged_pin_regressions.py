"""Regression tests: exception paths must release every buffer-pool pin.

These pin down the failure windows the repro-lint protocol pass flagged
in the paged B-tree (a fetch or page allocation failing mid-operation
used to strand pinned frames forever, eventually exhausting the pool)
plus two it cannot see statically: the validate-before-mutate oversized
payload paths and the server-side implicit rollback when a connection
with an open transaction drops.
"""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.server import MySQLServer
from repro.storage.paged import BufferPoolManager, PagedBTree, PageFile
from repro.storage.paged.node import MAX_LEAF_PAYLOAD, NEG_INF


class InjectingPool(BufferPoolManager):
    """Buffer pool that fails on command, for exception-path coverage.

    ``fail_fetch_after=N`` makes the (N+1)-th subsequent ``fetch`` raise;
    ``fail_fetch_pages`` fails any fetch of the given page ids;
    ``fail_new_page_after=N`` does the same for page allocation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_fetch_after = None
        self.fail_fetch_pages = set()
        self.fail_new_page_after = None

    def fetch(self, file, page_id):
        if page_id in self.fail_fetch_pages:
            raise BufferPoolError(f"injected fetch failure on page {page_id}")
        if self.fail_fetch_after is not None:
            if self.fail_fetch_after == 0:
                self.fail_fetch_after = None
                raise BufferPoolError("injected fetch failure")
            self.fail_fetch_after -= 1
        return super().fetch(file, page_id)

    def new_page(self, file, builder):
        if self.fail_new_page_after is not None:
            if self.fail_new_page_after == 0:
                self.fail_new_page_after = None
                raise BufferPoolError("injected allocation failure")
            self.fail_new_page_after -= 1
        return super().new_page(file, builder)


def big(value, payload_bytes=200):
    return (str(value) * payload_bytes)[:payload_bytes].encode()


def make_tree():
    pool = InjectingPool(capacity=64)
    file = PageFile(None, "t", space_id=1)
    tree = PagedBTree(pool, file)
    return tree, pool, file


def grow_to_height(tree, target=2):
    key = 0
    while tree.height < target:
        tree.insert(key, big(key))
        key += 1
    return key


class TestDescentFailures:
    def test_get_child_fetch_failure_releases_root_pin(self):
        tree, pool, _ = make_tree()
        grow_to_height(tree)
        pool.fail_fetch_after = 1  # root fetch succeeds, child fetch raises
        with pytest.raises(BufferPoolError, match="injected fetch"):
            tree.get(0)
        assert pool.pinned_frames == 0

    def test_insert_descent_fetch_failure_releases_stack(self):
        tree, pool, _ = make_tree()
        next_key = grow_to_height(tree)
        pool.fail_fetch_after = 1
        with pytest.raises(BufferPoolError, match="injected fetch"):
            tree.insert(next_key, big(next_key))
        assert pool.pinned_frames == 0

    def test_tree_still_usable_after_injected_failure(self):
        tree, pool, _ = make_tree()
        next_key = grow_to_height(tree)
        pool.fail_fetch_after = 1
        with pytest.raises(BufferPoolError):
            tree.get(0)
        # The injection is one-shot; with every pin released the same
        # operations must now succeed against an intact tree.
        assert tree.get(0)[0] == big(0)
        tree.insert(next_key, big(next_key))
        assert tree.get(next_key)[0] == big(next_key)
        assert pool.pinned_frames == 0


class TestSplitFailures:
    def test_root_split_allocation_failure_releases_pins(self):
        tree, pool, _ = make_tree()
        # First new_page during a split builds the right sibling; the
        # second promotes a new root. Fail the promotion.
        pool.fail_new_page_after = 1
        with pytest.raises(BufferPoolError, match="injected allocation"):
            for key in range(500):
                tree.insert(key, big(key))
        assert pool.pinned_frames == 0

    def test_leaf_split_successor_fetch_failure_releases_pins(self):
        tree, pool, file = make_tree()
        grow_to_height(tree)
        root = pool.read_node(file, tree.root_page_id)
        (first_sep, _), (second_sep, successor_id) = root.entries[0], root.entries[1]
        assert first_sep == NEG_INF
        # Splitting the leftmost leaf must re-link its successor; fail
        # exactly that fetch. Negative keys all route left of the first
        # real separator, so the descent itself never touches the
        # poisoned page.
        pool.fail_fetch_pages = {successor_id}
        with pytest.raises(BufferPoolError, match="injected fetch"):
            for key in range(-1, -500, -1):
                assert key < second_sep
                tree.insert(key, big(key))
        assert pool.pinned_frames == 0


class TestValidateBeforeMutate:
    def test_oversized_insert_releases_pins_and_leaves_tree_intact(self):
        tree, pool, _ = make_tree()
        tree.insert(1, b"small")
        with pytest.raises(StorageError, match="cannot fit"):
            tree.insert(2, b"x" * (MAX_LEAF_PAYLOAD + 1))
        assert pool.pinned_frames == 0
        assert tree.size == 1
        assert tree.get(2)[0] is None

    def test_oversized_update_releases_pins_and_keeps_old_payload(self):
        tree, pool, _ = make_tree()
        tree.insert(1, b"small")
        with pytest.raises(StorageError, match="cannot fit"):
            tree.update(1, b"x" * (MAX_LEAF_PAYLOAD + 1))
        assert pool.pinned_frames == 0
        assert tree.get(1)[0] == b"small"


class TestDisconnectRollsBackOpenTxn:
    def test_disconnect_aborts_and_releases_the_transaction(self):
        server = MySQLServer()
        session = server.connect("app")
        server.execute(
            session, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"
        )
        server.execute(session, "INSERT INTO t (id, name) VALUES (1, 'kept')")
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, name) VALUES (2, 'doomed')")
        txn_id = session.active_txn.txn_id
        assert txn_id in server.engine._active_txn_ids

        server.disconnect(session)
        assert session.active_txn is None
        assert txn_id not in server.engine._active_txn_ids

        other = server.connect("app")
        rows = server.execute(other, "SELECT id, name FROM t").rows
        assert rows == ((1, "kept"),)
        # The rolled-back row id is insertable again: nothing lingers.
        server.execute(other, "INSERT INTO t (id, name) VALUES (2, 'fresh')")
        rows = server.execute(other, "SELECT name FROM t WHERE id = 2").rows
        assert rows == (("fresh",),)

"""Tests for the central artifact registry and the multi-backend capture."""

import pytest

from repro.errors import SnapshotError
from repro.mongo import DocumentStore, capture_mongo
from repro.replication import ReplicatedDeployment
from repro.snapshot import (
    AttackScenario,
    ArtifactProvider,
    ArtifactRegistry,
    StateQuadrant,
    capture,
    default_registry,
)
from repro.spark import MiniSparkCluster, capture_spark


def _provider(name="a1", **overrides):
    fields = dict(
        name=name,
        backend="mysql",
        quadrant=StateQuadrant.PERSISTENT_DB,
        artifact_class="logs",
        capture=lambda target: b"x",
    )
    fields.update(overrides)
    return ArtifactProvider(**fields)


class TestArtifactRegistry:
    def test_register_and_lookup(self):
        registry = ArtifactRegistry()
        registry.register(_provider("redo"))
        registry.register(_provider("heap", quadrant=StateQuadrant.VOLATILE_DB,
                                    artifact_class="data_structures"))
        assert len(registry) == 2
        assert "redo" in registry
        assert registry.get("redo").artifact_class == "logs"
        assert registry.names() == ("redo", "heap")
        assert [p.name for p in registry.by_class("data_structures")] == ["heap"]

    def test_duplicate_name_rejected(self):
        registry = ArtifactRegistry()
        registry.register(_provider("dup"))
        with pytest.raises(SnapshotError, match="duplicate"):
            registry.register(_provider("dup"))

    def test_unknown_artifact_class_rejected(self):
        registry = ArtifactRegistry()
        with pytest.raises(SnapshotError, match="artifact class"):
            registry.register(_provider(artifact_class="blobs"))

    def test_unknown_name_lookup_raises(self):
        with pytest.raises(SnapshotError, match="unknown artifact"):
            ArtifactRegistry().get("nope")

    def test_backend_filtering(self):
        registry = ArtifactRegistry()
        registry.register(_provider("m1"))
        registry.register(_provider("g1", backend="mongo"))
        assert registry.backends() == ("mysql", "mongo")
        assert registry.names(backend="mongo") == ("g1",)

    def test_access_matrix_derivation(self):
        registry = ArtifactRegistry()
        registry.register(_provider("log"))
        registry.register(
            _provider(
                "diag",
                quadrant=StateQuadrant.VOLATILE_DB,
                artifact_class="diagnostic_tables",
            )
        )
        registry.register(
            _provider(
                "struct",
                quadrant=StateQuadrant.VOLATILE_DB,
                artifact_class="data_structures",
                requires_escalation=True,
            )
        )
        matrix = registry.access_matrix()
        assert matrix[AttackScenario.DISK_THEFT] == {
            "logs": True, "diagnostic_tables": False, "data_structures": False,
        }
        # Escalation-gated structures don't count for SQL injection...
        assert not matrix[AttackScenario.SQL_INJECTION]["data_structures"]
        # ...but do for scenarios that take the memory wholesale.
        assert matrix[AttackScenario.FULL_COMPROMISE]["data_structures"]


class TestDefaultRegistry:
    def test_is_cached_singleton(self):
        assert default_registry() is default_registry()

    def test_covers_all_backends(self):
        registry = default_registry()
        assert set(registry.backends()) == {"mysql", "mongo", "spark"}

    def test_every_provider_declares_a_reader_or_sinks(self):
        # The registry is the Figure-1 inventory: every entry must say how
        # the attacker consumes it (reader) or where its contents came
        # from (spec sinks) — most declare both.
        for provider in default_registry():
            assert provider.forensic_reader or provider.spec_sinks


class TestMongoCapture:
    @pytest.fixture
    def store(self):
        store = DocumentStore(profile_threshold_ms=0.0)
        store.insert_one("events", {"n": 1, "who": "alice"})
        store.insert_one("events", {"n": 2, "who": "bob"})
        store.find("events", {"who": "alice"})
        return store

    def test_disk_theft_yields_persistent_artifacts(self, store):
        snap = capture_mongo(store, AttackScenario.DISK_THEFT)
        assert snap.scenario is AttackScenario.DISK_THEFT
        assert len(snap.require("mongo_oplog_entries")) == 2
        assert "events" in snap.require("mongo_collection_ids")
        assert "events" in snap.require("mongo_documents")
        assert snap.require("mongo_profile_entries")
        # Live diagnostics are volatile: disk theft misses them.
        assert "mongo_server_status" not in snap.artifacts
        with pytest.raises(SnapshotError):
            snap.require("mongo_server_status")

    def test_injection_yields_diagnostics(self, store):
        snap = capture_mongo(store, AttackScenario.SQL_INJECTION)
        status = snap.require("mongo_server_status")
        assert status["collections"]["events"] == 2

    def test_no_mysql_artifacts_cross_over(self, store):
        snap = capture_mongo(store, AttackScenario.FULL_COMPROMISE)
        assert "redo_log_raw" not in snap.artifacts


class TestSparkCapture:
    @pytest.fixture
    def cluster(self):
        cluster = MiniSparkCluster(num_executors=2)
        rows = [{"id": i, "v": i % 3} for i in range(12)]
        cluster.create_table("t", rows)
        cluster.run_aggregation(
            "t", "count", filter_col="v", filter_value=1,
            description="SELECT count(*) FROM t WHERE v = 1",
        )
        return cluster

    def test_disk_theft_yields_event_log_only(self, cluster):
        snap = capture_spark(cluster, AttackScenario.DISK_THEFT)
        assert "SELECT count(*)" in snap.require("spark_event_log")
        assert "spark_executor_heaps" not in snap.artifacts

    def test_full_compromise_yields_worker_heaps(self, cluster):
        snap = capture_spark(cluster, AttackScenario.FULL_COMPROMISE)
        heaps = snap.require("spark_executor_heaps")
        assert set(heaps) == {0, 1}
        residue = sum(
            dump.count_locations("WHERE v = 1") for dump in heaps.values()
        )
        assert residue >= 1


class TestRelayLogArtifact:
    def test_replica_snapshot_includes_relay_log(self):
        deployment = ReplicatedDeployment(num_replicas=2)
        session = deployment.connect("app")
        deployment.execute(session, "CREATE TABLE r (id INT, v TEXT)")
        deployment.execute(session, "INSERT INTO r (id, v) VALUES (1, 'x')")
        replica = deployment.replicas[0]
        snap = capture(replica, AttackScenario.DISK_THEFT)
        relay = snap.require("relay_log_events")
        assert len(relay) == deployment.primary.engine.binlog.num_events
        assert any("INSERT INTO r" in e.statement for e in relay)

    def test_primary_has_no_relay_log(self):
        deployment = ReplicatedDeployment(num_replicas=1)
        snap = capture(deployment.primary, AttackScenario.DISK_THEFT)
        assert "relay_log_events" not in snap.artifacts

"""Tests for statement-based replication and its attack surface."""

import pytest

from repro.errors import ReproError
from repro.forensics import reconstruct_modifications
from repro.replication import ReplicatedDeployment
from repro.server import ServerConfig
from repro.snapshot import AttackScenario, capture


@pytest.fixture
def deployment():
    dep = ReplicatedDeployment(num_replicas=2)
    session = dep.connect("app")
    dep.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    dep.execute(session, "INSERT INTO t (id, v) VALUES (1, 'alpha'), (2, 'beta')")
    dep.execute(session, "UPDATE t SET v = 'gamma' WHERE id = 1")
    dep.execute(session, "SELECT v FROM t WHERE id = 2")  # reads not shipped
    return dep, session


class TestReplication:
    def test_replicas_hold_full_data(self, deployment):
        dep, _ = deployment
        for replica in dep.replicas:
            session = replica.connect("check")
            result = replica.execute(session, "SELECT id, v FROM t ORDER BY id")
            assert [tuple(r) for r in result.rows] == [(1, "gamma"), (2, "beta")]

    def test_in_sync_status(self, deployment):
        dep, _ = deployment
        status = dep.status()
        assert status.replicas == 2
        assert status.in_sync

    def test_reads_not_replicated(self, deployment):
        dep, _ = deployment
        # 4 statements issued, only 3 are binlogged (writes + DDL).
        assert dep.status().primary_binlog_events == 3

    def test_requires_binlog(self):
        with pytest.raises(ReproError):
            ReplicatedDeployment(config=ServerConfig(binlog_enabled=False))

    def test_zero_replicas_fine(self):
        dep = ReplicatedDeployment(num_replicas=0)
        session = dep.connect()
        dep.execute(session, "CREATE TABLE t (id INT PRIMARY KEY)")
        assert dep.status().replicas == 0

    def test_negative_replicas_rejected(self):
        with pytest.raises(ReproError):
            ReplicatedDeployment(num_replicas=-1)

    def test_lazy_shipping(self):
        dep = ReplicatedDeployment(num_replicas=1)
        session = dep.primary.connect("app")  # bypass auto-shipping
        dep.primary.execute(session, "CREATE TABLE t (id INT PRIMARY KEY)")
        dep.primary.execute(session, "INSERT INTO t (id) VALUES (1)")
        assert not dep.status().in_sync
        shipped = dep.ship_binlog()
        assert shipped == 2
        assert dep.status().in_sync


class TestReplicaAttackSurface:
    def test_any_replica_leaks_write_history(self, deployment):
        """Compromising a replica's disk == compromising the primary's."""
        dep, _ = deployment
        for machine in dep.all_machines:
            snap = capture(machine, AttackScenario.DISK_THEFT)
            events = reconstruct_modifications(
                snap.redo_log_raw, snap.undo_log_raw
            )
            table_events = [e for e in events if e.table == "t"]
            assert [e.op for e in table_events] == ["insert", "insert", "update"]
            update = table_events[-1]
            assert update.before == (1, "alpha")
            assert update.after == (1, "gamma")

    def test_replica_binlog_carries_statement_text(self, deployment):
        dep, _ = deployment
        replica = dep.replicas[0]
        texts = [e.statement for e in replica.engine.binlog.events]
        assert any("INSERT INTO t" in t for t in texts)

    def test_replica_heap_holds_replayed_statements(self, deployment):
        dep, _ = deployment
        snap = capture(dep.replicas[1], AttackScenario.VM_SNAPSHOT)
        dump = snap.require_memory_dump()
        assert dump.count_locations("UPDATE t SET v = 'gamma' WHERE id = 1") >= 1

    def test_attack_surface_scales_with_replicas(self):
        dep = ReplicatedDeployment(num_replicas=3)
        session = dep.connect()
        dep.execute(session, "CREATE TABLE t (id INT PRIMARY KEY)")
        dep.execute(session, "INSERT INTO t (id) VALUES (7)")
        leaky_machines = 0
        for machine in dep.all_machines:
            snap = capture(machine, AttackScenario.DISK_THEFT)
            events = reconstruct_modifications(snap.redo_log_raw, snap.undo_log_raw)
            if any(e.key == 7 for e in events):
                leaky_machines += 1
        assert leaky_machines == 4  # primary + 3 replicas

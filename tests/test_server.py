"""Integration tests for the MySQL-like server facade."""

import pytest

from repro.errors import (
    CatalogError,
    DuplicateKeyError,
    ParseError,
    ServerError,
    SessionError,
)
from repro.server import MySQLServer, ServerConfig


@pytest.fixture
def server():
    return MySQLServer()


@pytest.fixture
def session(server):
    return server.connect("app")


def seed_customers(server, session, n=20):
    server.execute(
        session,
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, state TEXT, age INT)",
    )
    values = ", ".join(
        f"({i}, 'name{i}', '{'IN' if i % 2 else 'AZ'}', {20 + i})" for i in range(1, n + 1)
    )
    server.execute(
        session,
        f"INSERT INTO customers (id, name, state, age) VALUES {values}",
    )


class TestDdlAndDml:
    def test_create_insert_select(self, server, session):
        seed_customers(server, session)
        result = server.execute(session, "SELECT name FROM customers WHERE id = 3")
        assert result.rows == (("name3",),)

    def test_duplicate_table_rejected(self, server, session):
        seed_customers(server, session)
        with pytest.raises(CatalogError):
            server.execute(session, "CREATE TABLE customers (id INT PRIMARY KEY)")

    def test_duplicate_pk_rejected_and_rolled_back(self, server, session):
        seed_customers(server, session, n=5)
        with pytest.raises(DuplicateKeyError):
            server.execute(
                session,
                "INSERT INTO customers (id, name, state, age) "
                "VALUES (100, 'new', 'CA', 30), (3, 'dup', 'CA', 30)",
            )
        # The whole statement rolled back: row 100 must not exist.
        result = server.execute(session, "SELECT * FROM customers WHERE id = 100")
        assert result.rows == ()

    def test_insert_wrong_type_rejected(self, server, session):
        seed_customers(server, session, n=1)
        with pytest.raises(CatalogError):
            server.execute(
                session,
                "INSERT INTO customers (id, name, state, age) "
                "VALUES (50, 'x', 'CA', 'notanint')",
            )

    def test_update(self, server, session):
        seed_customers(server, session, n=5)
        result = server.execute(
            session, "UPDATE customers SET state = 'TX' WHERE id = 2"
        )
        assert result.rows_affected == 1
        check = server.execute(session, "SELECT state FROM customers WHERE id = 2")
        assert check.rows == (("TX",),)

    def test_update_pk_rejected(self, server, session):
        seed_customers(server, session, n=2)
        with pytest.raises(CatalogError):
            server.execute(session, "UPDATE customers SET id = 99 WHERE id = 1")

    def test_delete(self, server, session):
        seed_customers(server, session, n=5)
        result = server.execute(session, "DELETE FROM customers WHERE age >= 24")
        assert result.rows_affected == 2
        remaining = server.execute(session, "SELECT count(*) FROM customers")
        assert remaining.rows == ((3,),)

    def test_unknown_table(self, server, session):
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT * FROM nope")

    def test_unknown_column(self, server, session):
        seed_customers(server, session, n=1)
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT qjxzzq FROM customers")

    def test_parse_error_surfaces(self, server, session):
        with pytest.raises(ParseError):
            server.execute(session, "SELEKT * FROM t")

    def test_hidden_rowid_table(self, server, session):
        server.execute(session, "CREATE TABLE nopk (a TEXT, b INT)")
        server.execute(session, "INSERT INTO nopk (a, b) VALUES ('x', 1), ('y', 2)")
        result = server.execute(session, "SELECT a FROM nopk WHERE b = 2")
        assert result.rows == (("y",),)


class TestSelectFeatures:
    def test_order_by_and_limit(self, server, session):
        seed_customers(server, session, n=10)
        result = server.execute(
            session, "SELECT id FROM customers ORDER BY age LIMIT 3"
        )
        assert [r[0] for r in result.rows] == [1, 2, 3]

    def test_between(self, server, session):
        seed_customers(server, session, n=10)
        result = server.execute(
            session, "SELECT id FROM customers WHERE id BETWEEN 4 AND 6"
        )
        assert [r[0] for r in result.rows] == [4, 5, 6]

    def test_pk_range_examines_fewer_rows(self, server, session):
        seed_customers(server, session, n=20)
        ranged = server.execute(
            session, "SELECT id FROM customers WHERE id BETWEEN 1 AND 3"
        )
        scanned = server.execute(
            session, "SELECT id FROM customers WHERE age >= 0"
        )
        assert ranged.rows_examined < scanned.rows_examined

    def test_count_star(self, server, session):
        seed_customers(server, session, n=7)
        result = server.execute(session, "SELECT count(*) FROM customers")
        assert result.rows == ((7,),)

    def test_match_keyword(self, server, session):
        server.execute(session, "CREATE TABLE docs (id INT PRIMARY KEY, body TEXT)")
        server.execute(
            session,
            "INSERT INTO docs (id, body) VALUES (1, 'alpha beta'), (2, 'gamma')",
        )
        result = server.execute(
            session, "SELECT id FROM docs WHERE MATCH(body, 'beta')"
        )
        assert result.rows == ((1,),)

    def test_null_never_matches(self, server, session):
        server.execute(session, "CREATE TABLE n (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO n (id, v) VALUES (1, NULL), (2, 5)")
        result = server.execute(session, "SELECT id FROM n WHERE v >= 0")
        assert result.rows == ((2,),)


class TestQueryCache:
    def test_cache_hit(self):
        server = MySQLServer(ServerConfig(query_cache_enabled=True))
        session = server.connect()
        seed_customers(server, session, n=5)
        q = "SELECT name FROM customers WHERE id = 1"
        first = server.execute(session, q)
        second = server.execute(session, q)
        assert not first.from_cache
        assert second.from_cache
        assert second.rows == first.rows

    def test_write_invalidates(self):
        server = MySQLServer(ServerConfig(query_cache_enabled=True))
        session = server.connect()
        seed_customers(server, session, n=5)
        q = "SELECT count(*) FROM customers"
        server.execute(session, q)
        server.execute(
            session,
            "INSERT INTO customers (id, name, state, age) VALUES (99, 'n', 'CA', 30)",
        )
        result = server.execute(session, q)
        assert not result.from_cache
        assert result.rows == ((6,),)

    def test_disabled_by_default(self, server, session):
        seed_customers(server, session, n=2)
        q = "SELECT count(*) FROM customers"
        server.execute(session, q)
        assert not server.execute(session, q).from_cache

    def test_cached_statement_text_visible(self):
        server = MySQLServer(ServerConfig(query_cache_enabled=True))
        session = server.connect()
        seed_customers(server, session, n=2)
        q = "SELECT name FROM customers WHERE state = 'IN'"
        server.execute(session, q)
        assert q in server.query_cache.statements


class TestDiagnosticTables:
    def test_processlist_shows_own_query(self, server, session):
        result = server.execute(
            session, "SELECT * FROM information_schema.processlist"
        )
        assert result.rows[0][0] == session.session_id
        assert "processlist" in result.rows[0][5]

    def test_processlist_idle_sessions_sleep(self, server, session):
        other = server.connect("victim")
        seed_customers(server, session, n=1)
        result = server.execute(
            session, "SELECT command FROM information_schema.processlist"
        )
        commands = {row[0] for row in result.rows}
        assert "Sleep" in commands  # the idle victim
        assert "Query" in commands  # the attacker's own probe

    def test_statements_history_accumulates(self, server, session):
        seed_customers(server, session, n=1)
        server.execute(session, "SELECT * FROM customers")
        result = server.execute(
            session,
            "SELECT sql_text FROM performance_schema.events_statements_history",
        )
        texts = [row[0] for row in result.rows]
        assert any("SELECT * FROM customers" in t for t in texts)

    def test_history_bounded_per_thread(self):
        server = MySQLServer(ServerConfig(perf_schema_history_size=5))
        session = server.connect()
        seed_customers(server, session, n=1)
        for i in range(20):
            server.execute(session, f"SELECT * FROM customers WHERE id = {i}")
        history = server.perf_schema.events_statements_history(session.session_id)
        assert len(history) == 5

    def test_digest_summary_groups_by_type(self, server, session):
        seed_customers(server, session, n=1)
        server.execute(session, "SELECT * FROM customers WHERE state = 'IN'")
        server.execute(session, "SELECT * FROM customers WHERE state = 'AZ'")
        server.execute(session, "SELECT * FROM customers WHERE age >= 25")
        result = server.execute(
            session,
            "SELECT digest_text, count_star FROM "
            "performance_schema.events_statements_summary_by_digest "
            "WHERE count_star >= 2",
        )
        state_rows = [r for r in result.rows if "state" in r[0] and "age" not in r[0]]
        assert state_rows and state_rows[0][1] == 2

    def test_global_status(self, server, session):
        result = server.execute(
            session, "SELECT * FROM performance_schema.global_status"
        )
        names = {row[0] for row in result.rows}
        assert "Queries" in names
        assert "Threads_connected" in names

    def test_unknown_virtual_table(self, server, session):
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT * FROM information_schema.nope")


class TestSessions:
    def test_two_sessions_isolated_arenas(self, server):
        a = server.connect("a")
        b = server.connect("b")
        server.execute(a, "CREATE TABLE t (id INT PRIMARY KEY)")
        server.execute(a, "INSERT INTO t (id) VALUES (1)")
        server.execute(b, "SELECT * FROM t")
        assert a.statements_executed == 2
        assert b.statements_executed == 1

    def test_closed_session_rejected(self, server, session):
        server.disconnect(session)
        with pytest.raises(SessionError):
            server.execute(session, "SELECT * FROM information_schema.processlist")

    def test_oversized_statement_rejected(self, server, session):
        with pytest.raises(SessionError):
            server.execute(session, "SELECT '" + "x" * 20000 + "' FROM t")

    def test_failed_statement_resets_session(self, server, session):
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT * FROM missing")
        # Session must be usable again.
        result = server.execute(
            session, "SELECT * FROM information_schema.processlist"
        )
        assert result.rows


class TestUdf:
    def test_register_and_call(self, server, session):
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        server.register_udf("big", lambda v, threshold: v is not None and v > threshold)
        result = server.execute(session, "SELECT id FROM t WHERE big(v, 15)")
        assert result.rows == ((2,),)

    def test_unknown_udf_rejected(self, server, session):
        server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        with pytest.raises(ServerError):
            server.execute(session, "SELECT id FROM t WHERE nosuch(v, 1)")

    def test_bad_udf_name_rejected(self, server):
        with pytest.raises(ServerError):
            server.register_udf("not a name", lambda v: True)


class TestRestart:
    def test_restart_clears_volatile_keeps_disk(self, server, session):
        seed_customers(server, session, n=3)
        server.execute(session, "SELECT * FROM customers")
        assert server.perf_schema.statements_total > 0
        binlog_before = server.engine.binlog.num_events
        server.restart()
        assert server.perf_schema.statements_total == 0
        assert server.engine.buffer_pool.resident_pages == 0
        assert server.engine.binlog.num_events == binlog_before
        # The shutdown wrote a buffer-pool dump to disk.
        assert server.last_buffer_pool_dump is not None

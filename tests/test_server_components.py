"""Unit tests for server components: query cache, AHI, info schema, clock."""

import pytest

from repro.clock import SimClock
from repro.errors import ReproError, ServerError
from repro.memory import SimulatedHeap
from repro.server.adaptive_hash import AdaptiveHashIndex
from repro.server.information_schema import InformationSchema
from repro.server.query_cache import QueryCache
from repro.server.session import Session


class TestSimClock:
    def test_advances(self):
        clock = SimClock(start=100.0)
        assert clock.advance(5) == 105.0
        assert clock.now == 105.0

    def test_sleep_alias(self):
        clock = SimClock(start=0)
        clock.sleep(3.5)
        assert clock.now == 3.5

    def test_timestamp_truncates(self):
        clock = SimClock(start=99.9)
        assert clock.timestamp() == 99

    def test_backwards_rejected(self):
        with pytest.raises(ReproError):
            SimClock().advance(-1)


class TestQueryCacheUnit:
    def make(self, enabled=True, max_entries=3):
        return QueryCache(SimulatedHeap(), enabled=enabled, max_entries=max_entries)

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.lookup("SELECT 1") is None
        cache.store("SELECT 1", ("t",), [(1,)])
        entry = cache.lookup("SELECT 1")
        assert entry is not None
        assert entry.rows == ((1,),)
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 1

    def test_lru_eviction(self):
        cache = self.make(max_entries=2)
        cache.store("q1", ("t",), [])
        cache.store("q2", ("t",), [])
        cache.lookup("q1")  # refresh q1
        cache.store("q3", ("t",), [])  # evicts q2
        assert cache.lookup("q2") is None
        assert cache.lookup("q1") is not None

    def test_evicted_entry_heap_persists(self):
        heap = SimulatedHeap()
        cache = QueryCache(heap, enabled=True, max_entries=1)
        cache.store("SELECT secret_query FROM t", ("t",), [])
        cache.store("other", ("t",), [])
        # Evicted but not zeroed: visible to a memory snapshot.
        assert b"SELECT secret_query FROM t" in heap.snapshot()

    def test_invalidate_only_matching_tables(self):
        cache = self.make()
        cache.store("qa", ("a",), [])
        cache.store("qb", ("b",), [])
        assert cache.invalidate_table("a") == 1
        assert cache.lookup("qa") is None
        assert cache.lookup("qb") is not None

    def test_disabled_is_inert(self):
        cache = self.make(enabled=False)
        cache.store("q", ("t",), [])
        assert cache.num_entries == 0
        assert cache.lookup("q") is None

    def test_duplicate_store_ignored(self):
        cache = self.make()
        cache.store("q", ("t",), [(1,)])
        cache.store("q", ("t",), [(2,)])
        assert cache.lookup("q").rows == ((1,),)

    def test_bad_size_rejected(self):
        with pytest.raises(ServerError):
            QueryCache(SimulatedHeap(), max_entries=0)


class TestAdaptiveHashUnit:
    def test_promotion_at_threshold(self):
        ahi = AdaptiveHashIndex(promotion_threshold=3)
        for _ in range(2):
            ahi.record_lookup("t", 5)
        assert not ahi.is_promoted("t", 5)
        ahi.record_lookup("t", 5)
        assert ahi.is_promoted("t", 5)

    def test_hot_keys_sorted_by_count(self):
        ahi = AdaptiveHashIndex(promotion_threshold=1)
        for _ in range(5):
            ahi.record_lookup("t", 1)
        for _ in range(9):
            ahi.record_lookup("t", 2)
        hot = ahi.hot_keys()
        assert [h.key for h in hot] == [2, 1]
        assert hot[0].access_count == 9

    def test_disabled_records_nothing(self):
        ahi = AdaptiveHashIndex(enabled=False)
        ahi.record_lookup("t", 1)
        assert ahi.access_count("t", 1) == 0

    def test_clear_on_restart(self):
        ahi = AdaptiveHashIndex(promotion_threshold=1)
        ahi.record_lookup("t", 1)
        ahi.clear()
        assert ahi.hot_keys() == []
        assert ahi.counters() == {}

    def test_bad_threshold_rejected(self):
        with pytest.raises(ServerError):
            AdaptiveHashIndex(promotion_threshold=0)


class TestInformationSchemaUnit:
    def test_processlist_shows_executing_statement(self):
        heap = SimulatedHeap()
        info = InformationSchema()
        session = Session(1, "alice", heap)
        info.register_session(session)
        session.begin_statement("SELECT 1 FROM t", timestamp=100)
        rows = info.processlist(now=107)
        assert rows[0].command == "Query"
        assert rows[0].info == "SELECT 1 FROM t"
        assert rows[0].time == 7

    def test_idle_session_sleeps_without_info(self):
        heap = SimulatedHeap()
        info = InformationSchema()
        session = Session(1, "alice", heap)
        info.register_session(session)
        rows = info.processlist(now=100)
        assert rows[0].command == "Sleep"
        assert rows[0].info is None

    def test_unregister(self):
        heap = SimulatedHeap()
        info = InformationSchema()
        session = Session(1, "a", heap)
        info.register_session(session)
        info.unregister_session(1)
        assert info.processlist(now=0) == []
        assert info.active_connections == 0

    def test_closed_sessions_hidden(self):
        heap = SimulatedHeap()
        info = InformationSchema()
        session = Session(1, "a", heap)
        info.register_session(session)
        session.close()
        assert info.processlist(now=0) == []

"""Tests for multi-statement transactions (BEGIN / COMMIT / ROLLBACK)."""

import pytest

from repro.errors import DuplicateKeyError, ServerError
from repro.server import MySQLServer


@pytest.fixture
def server():
    return MySQLServer()


@pytest.fixture
def session(server):
    s = server.connect("app")
    server.execute(s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    return s


class TestTransactions:
    def test_commit_makes_writes_durable(self, server, session):
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (2, 20)")
        server.execute(session, "COMMIT")
        assert server.execute(session, "SELECT count(*) FROM t").rows == ((2,),)

    def test_rollback_undoes_all_statements(self, server, session):
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 10)")
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (2, 20)")
        server.execute(session, "UPDATE t SET v = 99 WHERE id = 1")
        server.execute(session, "ROLLBACK")
        result = server.execute(session, "SELECT v FROM t")
        assert result.rows == ((10,),)

    def test_txn_statements_share_txn_id_in_binlog(self, server, session):
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 1)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (2, 2)")
        server.execute(session, "COMMIT")
        inserts = [
            e for e in server.engine.binlog.events if "INSERT" in e.statement
        ]
        assert len(inserts) == 2
        assert inserts[0].txn_id == inserts[1].txn_id

    def test_autocommit_statements_get_fresh_txn_ids(self, server, session):
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 1)")
        server.execute(session, "INSERT INTO t (id, v) VALUES (2, 2)")
        inserts = [
            e for e in server.engine.binlog.events if "INSERT" in e.statement
        ]
        assert inserts[0].txn_id != inserts[1].txn_id

    def test_nested_begin_rejected(self, server, session):
        server.execute(session, "BEGIN")
        with pytest.raises(ServerError):
            server.execute(session, "BEGIN")

    def test_commit_without_begin_rejected(self, server, session):
        with pytest.raises(ServerError):
            server.execute(session, "COMMIT")

    def test_rollback_without_begin_rejected(self, server, session):
        with pytest.raises(ServerError):
            server.execute(session, "ROLLBACK")

    def test_error_in_txn_aborts_it(self, server, session):
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 1)")
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (2, 2)")
        with pytest.raises(DuplicateKeyError):
            server.execute(session, "INSERT INTO t (id, v) VALUES (1, 0)")
        # Whole transaction rolled back and closed.
        assert session.active_txn is None
        assert server.execute(session, "SELECT count(*) FROM t").rows == ((1,),)

    def test_selects_allowed_inside_txn(self, server, session):
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (1, 1)")
        result = server.execute(session, "SELECT v FROM t WHERE id = 1")
        assert result.rows == ((1,),)
        server.execute(session, "COMMIT")

    def test_rolled_back_txn_leaves_undo_evidence(self, server, session):
        """ACID leakage: even aborted writes hit the logs first (paper §3)."""
        server.execute(session, "BEGIN")
        server.execute(session, "INSERT INTO t (id, v) VALUES (7, 777)")
        server.execute(session, "ROLLBACK")
        redo_ops = [r.op for r in server.engine.redo_log.records()]
        assert "insert" in redo_ops  # the aborted insert's after-image

"""Tests for snapshot scenarios and capture (Figure 1)."""

import pytest

from repro.errors import SnapshotError
from repro.server import MySQLServer
from repro.snapshot import AttackScenario, StateQuadrant, capture, quadrants_for
from repro.snapshot.scenario import access_matrix, reveals


@pytest.fixture
def loaded_server():
    server = MySQLServer()
    session = server.connect("app")
    server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'secret-value')")
    server.execute(session, "SELECT v FROM t WHERE id = 1")
    server.dump_buffer_pool()
    return server


class TestScenarioMatrix:
    def test_disk_theft_persistent_only(self):
        quads = quadrants_for(AttackScenario.DISK_THEFT)
        assert StateQuadrant.PERSISTENT_DB in quads
        assert StateQuadrant.PERSISTENT_OS in quads
        assert StateQuadrant.VOLATILE_DB not in quads

    def test_sql_injection_db_only(self):
        quads = quadrants_for(AttackScenario.SQL_INJECTION)
        assert quads == {
            StateQuadrant.PERSISTENT_DB,
            StateQuadrant.VOLATILE_DB,
        }

    def test_vm_and_full_see_everything(self):
        for scenario in (AttackScenario.VM_SNAPSHOT, AttackScenario.FULL_COMPROMISE):
            assert quadrants_for(scenario) == set(StateQuadrant)

    def test_reveals_helper(self):
        assert reveals(AttackScenario.DISK_THEFT, StateQuadrant.PERSISTENT_DB)
        assert not reveals(AttackScenario.DISK_THEFT, StateQuadrant.VOLATILE_OS)

    def test_figure1_artifact_matrix(self):
        matrix = access_matrix()
        # Disk theft: logs only.
        assert matrix[AttackScenario.DISK_THEFT] == {
            "logs": True,
            "diagnostic_tables": False,
            "data_structures": False,
        }
        # SQL injection: diagnostic tables (data structures need escalation).
        assert matrix[AttackScenario.SQL_INJECTION]["diagnostic_tables"]
        assert not matrix[AttackScenario.SQL_INJECTION]["data_structures"]
        # VM snapshot and full compromise: everything.
        for scenario in (AttackScenario.VM_SNAPSHOT, AttackScenario.FULL_COMPROMISE):
            assert all(matrix[scenario].values())

    def test_check_counts_match_paper_table(self):
        # Figure 1 shows 1 / 2 / 3 / 3 checks per row.
        matrix = access_matrix()
        counts = {s: sum(matrix[s].values()) for s in AttackScenario}
        assert counts[AttackScenario.DISK_THEFT] == 1
        assert counts[AttackScenario.SQL_INJECTION] == 2
        assert counts[AttackScenario.VM_SNAPSHOT] == 3
        assert counts[AttackScenario.FULL_COMPROMISE] == 3


class TestCapture:
    def test_disk_theft_has_disk_no_memory(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        assert snap.redo_log_raw is not None
        assert snap.binlog_events is not None
        assert snap.buffer_pool_dump is not None
        assert snap.tablespace_images and "t" in snap.tablespace_images
        assert snap.memory_dump is None
        assert snap.digest_summaries is None
        with pytest.raises(SnapshotError):
            snap.require_memory_dump()

    def test_sql_injection_no_raw_data_structures(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.SQL_INJECTION)
        assert snap.digest_summaries is not None
        assert snap.processlist is not None
        # Persistent DB state is reachable (code injection reads DB files)...
        assert snap.redo_log_raw is not None
        # ...but the strictly-internal structures need the escalation.
        assert snap.memory_dump is None
        assert snap.query_cache_statements is None
        with pytest.raises(SnapshotError):
            snap.require_memory_dump()

    def test_sql_injection_escalated_adds_memory(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.SQL_INJECTION, escalated=True)
        assert snap.memory_dump is not None
        assert snap.query_cache_statements is not None
        # Code execution in the DB process also reads the DB's files: the
        # paper says injection yields "the persistent and volatile DB state".
        assert snap.redo_log_raw is not None

    def test_vm_snapshot_has_everything(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.VM_SNAPSHOT)
        assert snap.redo_log_raw is not None
        assert snap.memory_dump is not None
        assert snap.digest_summaries is not None
        assert snap.live_buffer_pool is not None

    def test_memory_dump_contains_query_text(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.FULL_COMPROMISE)
        dump = snap.require_memory_dump()
        assert dump.count_locations("SELECT v FROM t WHERE id = 1") >= 1

    def test_snapshot_is_static(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.VM_SNAPSHOT)
        before = snap.require_memory_dump().size
        session = loaded_server.connect("later")
        loaded_server.execute(session, "SELECT * FROM t")
        assert snap.require_memory_dump().size == before

    def test_captured_at_uses_sim_clock(self, loaded_server):
        now = loaded_server.clock.timestamp()
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        assert snap.captured_at == now


class TestVmSnapshotVariants:
    """Paper §2: storage-only vs full-state VM snapshots."""

    def test_storage_only_snapshot_is_disk_like(self, loaded_server):
        snap = capture(
            loaded_server, AttackScenario.VM_SNAPSHOT, full_state=False
        )
        assert snap.redo_log_raw is not None
        assert snap.binlog_events is not None
        assert snap.memory_dump is None
        assert snap.digest_summaries is None

    def test_full_state_is_default(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.VM_SNAPSHOT)
        assert snap.memory_dump is not None

    def test_full_state_flag_ignored_elsewhere(self, loaded_server):
        snap = capture(
            loaded_server, AttackScenario.FULL_COMPROMISE, full_state=False
        )
        assert snap.memory_dump is not None

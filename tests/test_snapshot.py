"""Tests for snapshot scenarios and capture (Figure 1)."""

import itertools

import pytest

from repro.errors import SnapshotError
from repro.server import MySQLServer
from repro.snapshot import (
    AttackScenario,
    StateQuadrant,
    capture,
    default_registry,
    effective_quadrants,
    quadrants_for,
)
from repro.snapshot.scenario import access_matrix, reveals


@pytest.fixture
def loaded_server():
    server = MySQLServer()
    session = server.connect("app")
    server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    server.execute(session, "INSERT INTO t (id, v) VALUES (1, 'secret-value')")
    server.execute(session, "SELECT v FROM t WHERE id = 1")
    server.dump_buffer_pool()
    return server


class TestScenarioMatrix:
    def test_disk_theft_persistent_only(self):
        quads = quadrants_for(AttackScenario.DISK_THEFT)
        assert StateQuadrant.PERSISTENT_DB in quads
        assert StateQuadrant.PERSISTENT_OS in quads
        assert StateQuadrant.VOLATILE_DB not in quads

    def test_sql_injection_db_only(self):
        quads = quadrants_for(AttackScenario.SQL_INJECTION)
        assert quads == {
            StateQuadrant.PERSISTENT_DB,
            StateQuadrant.VOLATILE_DB,
        }

    def test_vm_and_full_see_everything(self):
        for scenario in (AttackScenario.VM_SNAPSHOT, AttackScenario.FULL_COMPROMISE):
            assert quadrants_for(scenario) == set(StateQuadrant)

    def test_reveals_helper(self):
        assert reveals(AttackScenario.DISK_THEFT, StateQuadrant.PERSISTENT_DB)
        assert not reveals(AttackScenario.DISK_THEFT, StateQuadrant.VOLATILE_OS)

    def test_effective_quadrants_degrades_storage_only_vm(self):
        quads = effective_quadrants(AttackScenario.VM_SNAPSHOT, full_state=False)
        assert quads == {
            StateQuadrant.PERSISTENT_DB,
            StateQuadrant.PERSISTENT_OS,
        }
        # full_state applies only to VM snapshots.
        assert effective_quadrants(
            AttackScenario.FULL_COMPROMISE, full_state=False
        ) == set(StateQuadrant)

    def test_figure1_artifact_matrix(self):
        matrix = access_matrix()
        # Disk theft: logs only.
        assert matrix[AttackScenario.DISK_THEFT] == {
            "logs": True,
            "diagnostic_tables": False,
            "data_structures": False,
        }
        # SQL injection: diagnostic tables (data structures need escalation).
        assert matrix[AttackScenario.SQL_INJECTION]["diagnostic_tables"]
        assert not matrix[AttackScenario.SQL_INJECTION]["data_structures"]
        # VM snapshot and full compromise: everything.
        for scenario in (AttackScenario.VM_SNAPSHOT, AttackScenario.FULL_COMPROMISE):
            assert all(matrix[scenario].values())

    def test_check_counts_match_paper_table(self):
        # Figure 1 shows 1 / 2 / 3 / 3 checks per row.
        matrix = access_matrix()
        counts = {s: sum(matrix[s].values()) for s in AttackScenario}
        assert counts[AttackScenario.DISK_THEFT] == 1
        assert counts[AttackScenario.SQL_INJECTION] == 2
        assert counts[AttackScenario.VM_SNAPSHOT] == 3
        assert counts[AttackScenario.FULL_COMPROMISE] == 3


class TestCaptureProperty:
    """The registry walk obeys the scenario gating for EVERY provider.

    This replaces hand-enumerated per-scenario assertions: any provider
    added to the registry later is automatically covered.
    """

    @pytest.mark.parametrize(
        "scenario,escalated,full_state",
        list(
            itertools.product(
                list(AttackScenario), (False, True), (True, False)
            )
        ),
        ids=lambda v: str(getattr(v, "value", v)),
    )
    def test_capture_never_exceeds_scenario(
        self, loaded_server, scenario, escalated, full_state
    ):
        registry = default_registry()
        snap = capture(
            loaded_server, scenario, escalated=escalated, full_state=full_state
        )
        # Nothing outside the registry's mysql surface is ever captured.
        mysql_names = set(registry.names(backend="mysql"))
        assert set(snap.artifacts) <= mysql_names

        quadrants = effective_quadrants(scenario, full_state)
        for provider in registry.providers(backend="mysql"):
            name = provider.name
            if provider.quadrant not in quadrants:
                assert name not in snap.artifacts, (
                    f"{name} leaked outside {scenario.value}'s quadrants"
                )
            elif (
                provider.requires_escalation
                and scenario is AttackScenario.SQL_INJECTION
                and not escalated
            ):
                assert name not in snap.artifacts, (
                    f"{name} reached un-escalated SQL injection"
                )
            elif provider.enabled is not None and not provider.enabled(
                loaded_server
            ):
                assert name not in snap.artifacts
            else:
                assert name in snap.artifacts, (
                    f"{name} missing from {scenario.value} "
                    f"(escalated={escalated}, full_state={full_state})"
                )

    def test_capture_only_walks_requested_backend(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.FULL_COMPROMISE)
        assert not any(name.startswith("mongo_") for name in snap.artifacts)
        assert not any(name.startswith("spark_") for name in snap.artifacts)


class TestCaptureBehavior:
    def test_disk_theft_artifacts_have_content(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        assert snap.redo_log_raw
        assert snap.binlog_events
        assert snap.tablespace_images and "t" in snap.tablespace_images
        with pytest.raises(SnapshotError):
            snap.require_memory_dump()

    def test_sql_injection_escalated_adds_memory(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.SQL_INJECTION, escalated=True)
        assert snap.memory_dump is not None
        assert snap.query_cache_statements is not None
        # Code execution in the DB process also reads the DB's files: the
        # paper says injection yields "the persistent and volatile DB state".
        assert snap.redo_log_raw is not None

    def test_memory_dump_contains_query_text(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.FULL_COMPROMISE)
        dump = snap.require_memory_dump()
        assert dump.count_locations("SELECT v FROM t WHERE id = 1") >= 1

    def test_snapshot_is_static(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.VM_SNAPSHOT)
        before = snap.require_memory_dump().size
        session = loaded_server.connect("later")
        loaded_server.execute(session, "SELECT * FROM t")
        assert snap.require_memory_dump().size == before

    def test_captured_at_uses_sim_clock(self, loaded_server):
        now = loaded_server.clock.timestamp()
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        assert snap.captured_at == now

    def test_generic_accessors(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        assert snap.get("redo_log_raw") == snap.require("redo_log_raw")
        assert snap.get("memory_dump") is None
        with pytest.raises(SnapshotError):
            snap.require("memory_dump")

    def test_registry_names_read_as_attributes(self, loaded_server):
        snap = capture(loaded_server, AttackScenario.DISK_THEFT)
        # A registry-known artifact absent from this scenario reads None...
        assert snap.digest_summaries is None
        # ...but a name the registry has never heard of is an error.
        with pytest.raises(AttributeError):
            snap.no_such_artifact

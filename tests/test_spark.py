"""Tests for the mini Spark cluster and its leak surfaces."""

import pytest

from repro.clock import SimClock
from repro.errors import LogError, ReproError
from repro.spark import (
    EventLog,
    MiniSparkCluster,
    SparkEvent,
    history_server_queries,
    scan_executor_heaps,
)
from repro.spark.forensics import query_histogram


@pytest.fixture
def cluster():
    cluster = MiniSparkCluster(num_executors=3, clock=SimClock(start=1_000))
    cluster.create_table(
        "sales",
        [
            {"region": "east", "amount": 10},
            {"region": "west", "amount": 20},
            {"region": "east", "amount": 30},
            {"region": "north", "amount": 5},
            {"region": "east", "amount": 7},
        ],
    )
    return cluster


class TestEngine:
    def test_count(self, cluster):
        result = cluster.run_aggregation("sales", "count")
        assert result.value == 5
        assert result.rows_scanned == 5

    def test_count_with_filter(self, cluster):
        result = cluster.run_aggregation(
            "sales", "count", filter_col="region", filter_value="east"
        )
        assert result.value == 3

    def test_sum(self, cluster):
        result = cluster.run_aggregation("sales", "sum", column="amount")
        assert result.value == 72

    def test_sum_with_filter(self, cluster):
        result = cluster.run_aggregation(
            "sales", "sum", column="amount",
            filter_col="region", filter_value="east",
        )
        assert result.value == 47

    def test_partitioned_across_executors(self, cluster):
        cluster.run_aggregation("sales", "count")
        assert sum(e.tasks_run for e in cluster.executors) == 3

    def test_sum_needs_column(self, cluster):
        with pytest.raises(ReproError):
            cluster.run_aggregation("sales", "sum")

    def test_unknown_table(self, cluster):
        with pytest.raises(ReproError):
            cluster.run_aggregation("nope", "count")

    def test_bad_agg(self, cluster):
        with pytest.raises(ReproError):
            cluster.run_aggregation("sales", "median")

    def test_duplicate_table(self, cluster):
        with pytest.raises(ReproError):
            cluster.create_table("sales", [])

    def test_zero_executors_rejected(self):
        with pytest.raises(ReproError):
            MiniSparkCluster(num_executors=0)


class TestEventLog:
    def test_jobs_recorded_with_description(self, cluster):
        cluster.run_aggregation("sales", "count")
        starts = [
            e for e in cluster.event_log.events
            if e.event_type == "SparkListenerJobStart"
        ]
        assert len(starts) == 1
        assert "SELECT count(*)" in starts[0].payload["Job Description"]

    def test_jsonl_roundtrip(self, cluster):
        cluster.run_aggregation("sales", "count")
        cluster.run_aggregation("sales", "sum", column="amount")
        text = cluster.event_log.to_jsonl()
        parsed = EventLog.parse_jsonl(text)
        assert len(parsed) == cluster.event_log.num_events
        assert parsed[0].event_type == "SparkListenerJobStart"

    def test_disabled_log(self):
        cluster = MiniSparkCluster(num_executors=1, event_log_enabled=False)
        cluster.create_table("t", [{"a": 1}])
        cluster.run_aggregation("t", "count")
        assert cluster.event_log.num_events == 0

    def test_bad_jsonl_rejected(self):
        with pytest.raises(LogError):
            EventLog.parse_jsonl("not json\n")

    def test_bad_event_type_rejected(self):
        with pytest.raises(LogError):
            SparkEvent("Nonsense", 0, 0, {})


class TestSparkForensics:
    def test_history_server_recovers_all_queries(self, cluster):
        cluster.run_aggregation(
            "sales", "count", filter_col="region", filter_value="east"
        )
        cluster.run_aggregation("sales", "sum", column="amount")
        recovered = history_server_queries(cluster.event_log.to_jsonl())
        assert len(recovered) == 2
        assert "region = 'east'" in recovered[0][2]

    def test_query_histogram(self, cluster):
        for _ in range(3):
            cluster.run_aggregation(
                "sales", "count", filter_col="region", filter_value="east"
            )
        cluster.run_aggregation(
            "sales", "count", filter_col="region", filter_value="west"
        )
        histogram = query_histogram(cluster.event_log.to_jsonl())
        assert sorted(histogram.values()) == [1, 3]

    def test_executor_heaps_retain_expressions(self, cluster):
        cluster.run_aggregation(
            "sales", "count", filter_col="region", filter_value="east"
        )
        hits = scan_executor_heaps(cluster, "region = 'east'")
        assert sum(hits.values()) >= cluster.run_aggregation("sales", "count").partitions - 1
        # Every executor that ran a task holds at least one copy.
        assert all(count >= 1 for count in hits.values())

    def test_timestamps_monotone(self, cluster):
        cluster.run_aggregation("sales", "count")
        cluster.clock.advance(100)
        cluster.run_aggregation("sales", "count")
        times = [t for t, _, _ in history_server_queries(cluster.event_log.to_jsonl())]
        assert times == sorted(times)
        assert times[1] - times[0] >= 100

"""Tests for SUM/MIN/MAX/AVG aggregates and GROUP BY."""

import pytest

from repro.errors import CatalogError, ParseError
from repro.server import MySQLServer
from repro.sql import digest, parse


@pytest.fixture
def server():
    return MySQLServer()


@pytest.fixture
def session(server):
    s = server.connect()
    server.execute(
        s, "CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount INT)"
    )
    server.execute(
        s,
        "INSERT INTO sales (id, region, amount) VALUES "
        "(1, 'east', 10), (2, 'west', 20), (3, 'east', 30), "
        "(4, 'north', NULL), (5, 'west', 6)",
    )
    return s


class TestParsing:
    def test_aggregate_functions(self):
        for func in ("sum", "min", "max", "avg"):
            stmt = parse(f"SELECT {func}(amount) FROM sales")
            assert stmt.aggregate.func == func
            assert stmt.aggregate.column == "amount"

    def test_group_by(self):
        stmt = parse("SELECT sum(amount) FROM sales GROUP BY region")
        assert stmt.group_by == "region"

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT region FROM sales GROUP BY region")

    def test_group_by_with_where_and_limit(self):
        stmt = parse(
            "SELECT count(*) FROM sales WHERE amount >= 5 "
            "GROUP BY region LIMIT 2"
        )
        assert stmt.group_by == "region"
        assert stmt.limit == 2


class TestExecution:
    def test_sum(self, server, session):
        assert server.execute(session, "SELECT sum(amount) FROM sales").rows == ((66,),)

    def test_min_max(self, server, session):
        assert server.execute(session, "SELECT min(amount) FROM sales").rows == ((6,),)
        assert server.execute(session, "SELECT max(amount) FROM sales").rows == ((30,),)

    def test_avg_floor(self, server, session):
        # (10+20+30+6) / 4 non-NULL values = 16.5 -> floor 16
        assert server.execute(session, "SELECT avg(amount) FROM sales").rows == ((16,),)

    def test_nulls_skipped(self, server, session):
        result = server.execute(
            session, "SELECT min(amount) FROM sales WHERE region = 'north'"
        )
        assert result.rows == ((None,),)

    def test_group_by_sum(self, server, session):
        result = server.execute(
            session, "SELECT sum(amount) FROM sales GROUP BY region"
        )
        assert result.rows == (("east", 40), ("north", 0), ("west", 26))
        assert result.columns == ("region", "sum(amount)")

    def test_group_by_count(self, server, session):
        result = server.execute(
            session, "SELECT count(*) FROM sales GROUP BY region"
        )
        assert dict(result.rows) == {"east": 2, "north": 1, "west": 2}

    def test_group_by_with_where(self, server, session):
        result = server.execute(
            session,
            "SELECT count(*) FROM sales WHERE amount >= 10 GROUP BY region",
        )
        assert dict(result.rows) == {"east": 2, "west": 1}

    def test_group_by_limit(self, server, session):
        result = server.execute(
            session, "SELECT count(*) FROM sales GROUP BY region LIMIT 20"
        )
        assert len(result.rows) == 3  # limit applies pre-grouping to rows

    def test_aggregate_over_text_rejected(self, server, session):
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT sum(region) FROM sales")

    def test_unknown_group_column_rejected(self, server, session):
        with pytest.raises(CatalogError):
            server.execute(session, "SELECT count(*) FROM sales GROUP BY nope")

    def test_empty_table_aggregates(self, server):
        session = server.connect()
        server.execute(session, "CREATE TABLE e (id INT PRIMARY KEY, v INT)")
        assert server.execute(session, "SELECT sum(v) FROM e").rows == ((0,),)
        assert server.execute(session, "SELECT min(v) FROM e").rows == ((None,),)
        assert server.execute(session, "SELECT avg(v) FROM e").rows == ((None,),)


class TestDigestInteraction:
    def test_group_by_queries_share_digests(self):
        a = "SELECT sum(amount) FROM sales WHERE region = 'east' GROUP BY region"
        b = "SELECT sum(amount) FROM sales WHERE region = 'west' GROUP BY region"
        c = "SELECT sum(amount) FROM sales GROUP BY region"
        assert digest(a) == digest(b)
        assert digest(a) != digest(c)

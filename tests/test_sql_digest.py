"""Tests for performance-schema digest canonicalization (paper Section 4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sql import canonicalize, digest


class TestPaperExamples:
    """The exact canonicalization examples from Section 4."""

    def test_same_where_value_same_digest(self):
        a = "SELECT * FROM CUSTOMERS WHERE STATE='IN'"
        b = "SELECT * FROM CUSTOMERS WHERE STATE='AZ'"
        assert digest(a) == digest(b)

    def test_different_attribute_different_digest(self):
        a = "SELECT * FROM CUSTOMERS WHERE STATE='IN'"
        c = "SELECT * FROM CUSTOMERS WHERE AGE >=25"
        assert digest(a) != digest(c)

    def test_conjunction_is_its_own_type(self):
        a = "SELECT * FROM CUSTOMERS WHERE STATE='IN'"
        c = "SELECT * FROM CUSTOMERS WHERE AGE >=25"
        d = "SELECT * FROM CUSTOMERS WHERE STATE='IN' AND AGE >=25"
        assert digest(d) != digest(a)
        assert digest(d) != digest(c)


class TestCanonicalization:
    def test_literals_replaced(self):
        text = canonicalize("SELECT * FROM t WHERE a = 42 AND b = 'x'")
        assert "42" not in text
        assert "'x'" not in text
        assert text.count("?") == 2

    def test_keywords_uppercased(self):
        assert canonicalize("select * from t") == canonicalize("SELECT * FROM t")

    def test_identifier_case_preserved(self):
        # MySQL's DIGEST_TEXT keeps identifiers as written (table names are
        # case-sensitive on Linux) - distinct case, distinct digest.
        assert canonicalize("SELECT * FROM Customers") != canonicalize(
            "SELECT * FROM CUSTOMERS"
        )

    def test_whitespace_normalized(self):
        assert canonicalize("SELECT   *  FROM t") == canonicalize("SELECT * FROM t")

    def test_identifiers_preserved(self):
        # Column names survive - the property the SPLASHE attack needs.
        text = canonicalize("SELECT ashe_sum(c3) FROM t")
        assert "c3" in text

    def test_splashe_rewrites_get_distinct_digests(self):
        q_a = "SELECT ashe_sum(c3) FROM t"
        q_b = "SELECT ashe_sum(c7) FROM t"
        assert digest(q_a) != digest(q_b)

    def test_insert_values_collapse(self):
        a = "INSERT INTO t (a) VALUES (1)"
        b = "INSERT INTO t (a) VALUES (999)"
        assert digest(a) == digest(b)

    def test_multi_row_insert_distinct_from_single(self):
        a = "INSERT INTO t (a) VALUES (1)"
        b = "INSERT INTO t (a) VALUES (1), (2)"
        assert digest(a) != digest(b)

    def test_hex_literals_collapse(self):
        a = "SELECT * FROM t WHERE c = x'aa'"
        b = "SELECT * FROM t WHERE c = x'bb'"
        assert digest(a) == digest(b)

    def test_digest_is_stable_hex(self):
        d = digest("SELECT * FROM t")
        assert len(d) == 32
        int(d, 16)  # parses as hex

    @given(st.integers(0, 10**6))
    def test_any_int_literal_same_digest(self, value):
        base = digest("SELECT * FROM t WHERE a = 0")
        assert digest(f"SELECT * FROM t WHERE a = {value}") == base

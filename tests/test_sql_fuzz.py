"""Fuzz/property tests for the SQL front end's robustness.

The parser faces attacker-influenced input (SQL injection is a core paper
scenario), so it must fail *only* with typed errors — never hang, crash, or
corrupt state — on arbitrary input.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLError
from repro.server import MySQLServer
from repro.sql import canonicalize, digest, parse, tokenize


class TestLexerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=120))
    def test_tokenize_total_or_typed_error(self, text):
        try:
            tokens = tokenize(text)
        except SQLError:
            return
        # On success the token stream is well-formed and EOF-terminated.
        assert tokens[-1].type.value == "eof"

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet="SELECT FROMWHERE*(),'=<>0123456789abcxyz_ ", max_size=100))
    def test_parse_total_or_typed_error(self, text):
        try:
            parse(text)
        except SQLError:
            pass  # LexerError / ParseError are the only acceptable failures


class TestDigestFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="SELECT FROM t WHERE a=1'x'2 ", max_size=80))
    def test_digest_total_on_lexable_input(self, text):
        try:
            tokenize(text)
        except SQLError:
            return
        # Lexable input always canonicalizes and digests.
        assert len(digest(text)) == 32

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_digest_literal_independence(self, a, b):
        assert digest(f"SELECT * FROM t WHERE x = {a}") == digest(
            f"SELECT * FROM t WHERE x = {b}"
        )

    def test_canonicalize_idempotent_on_canonical_text(self):
        text = canonicalize("SELECT * FROM t WHERE a = 5 AND b = 'x'")
        assert canonicalize(text) == text


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,9}", fullmatch=True)
_OPS = ("=", "!=", "<", "<=", ">", ">=")
_CASINGS = (str.upper, str.lower, str.capitalize)


@st.composite
def _select_shapes(draw):
    """A statement *shape*: table, columns, and WHERE columns/operators.

    The shape is what the digest must depend on — everything else
    (literals, keyword casing, whitespace) must not affect it.
    """
    table = draw(_IDENT)
    columns = draw(st.lists(_IDENT, min_size=1, max_size=3, unique=True))
    where = draw(
        st.lists(
            st.tuples(_IDENT, st.sampled_from(_OPS)), min_size=0, max_size=2
        )
    )
    return table, tuple(columns), tuple(where)


@st.composite
def _renderings(draw):
    """One shape rendered twice with independent cosmetic choices."""
    shape = draw(_select_shapes())

    def render():
        table, columns, where = shape
        casing = draw(st.sampled_from(_CASINGS))
        gap = " " * draw(st.integers(1, 3))

        def lit():
            if draw(st.booleans()):
                return str(draw(st.integers(0, 10**9)))
            return "'%s'" % draw(
                st.text(alphabet="abcdefgh XYZ019_", max_size=8)
            )

        parts = [casing("SELECT"), ", ".join(columns), casing("FROM"), table]
        if where:
            parts.append(casing("WHERE"))
            conds = [f"{col} {op} {lit()}" for col, op in where]
            parts.append(f" {casing('AND')} ".join(conds))
        return gap.join(parts)

    return shape, render(), render()


class TestDigestEquivalenceFuzz:
    """The digest is the observability layer's query identifier, so its
    equivalence classes are load-bearing: unstable digests would fragment
    the per-query-type counts every artifact (performance_schema, the obs
    trace) reports; over-coarse digests would merge distinct query shapes.
    """

    @settings(max_examples=200, deadline=None)
    @given(_renderings())
    def test_digest_invariant_under_cosmetic_variation(self, case):
        """Whitespace, keyword case, and literal values never matter."""
        _, variant_a, variant_b = case
        assert digest(variant_a) == digest(variant_b), (variant_a, variant_b)

    @settings(max_examples=200, deadline=None)
    @given(_renderings(), _renderings())
    def test_digest_distinct_for_distinct_structure(self, case_a, case_b):
        shape_a, variant_a, _ = case_a
        shape_b, variant_b, _ = case_b
        if shape_a != shape_b:
            assert digest(variant_a) != digest(variant_b), (variant_a, variant_b)

    @settings(max_examples=100, deadline=None)
    @given(_renderings())
    def test_added_condition_changes_digest(self, case):
        """The paper's §4 example: WHERE STATE=? vs WHERE STATE=? AND AGE>=?."""
        (_, _, where), variant, _ = case
        joiner = " AND " if where else " WHERE "
        extended = variant + joiner + "zzz_extra = 1"
        assert digest(extended) != digest(variant)

    @settings(max_examples=100, deadline=None)
    @given(_renderings())
    def test_digest_matches_canonical_form(self, case):
        """Any rendering digests identically to its canonical text."""
        _, variant, _ = case
        assert digest(variant) == digest(canonicalize(variant))


class TestServerFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=80))
    def test_server_survives_arbitrary_statements(self, text):
        server = MySQLServer()
        session = server.connect("fuzzer")
        try:
            server.execute(session, text)
        except Exception as exc:
            # Any library error is fine; session must stay usable.
            from repro.errors import ReproError

            assert isinstance(exc, ReproError), type(exc)
        result = server.execute(
            session, "SELECT * FROM information_schema.processlist"
        )
        assert result.rows  # the session survived

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                   blacklist_characters="'"),
            max_size=40,
        )
    )
    def test_string_literals_roundtrip_through_storage(self, text):
        server = MySQLServer()
        session = server.connect()
        server.execute(session, "CREATE TABLE f (id INT PRIMARY KEY, v TEXT)")
        server.execute(session, f"INSERT INTO f (id, v) VALUES (1, '{text}')")
        result = server.execute(session, "SELECT v FROM f WHERE id = 1")
        assert result.rows == ((text,),)

"""Fuzz/property tests for the SQL front end's robustness.

The parser faces attacker-influenced input (SQL injection is a core paper
scenario), so it must fail *only* with typed errors — never hang, crash, or
corrupt state — on arbitrary input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, SQLError
from repro.server import MySQLServer
from repro.sql import canonicalize, digest, parse, tokenize
from repro.sql.ast import Select


class TestLexerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=120))
    def test_tokenize_total_or_typed_error(self, text):
        try:
            tokens = tokenize(text)
        except SQLError:
            return
        # On success the token stream is well-formed and EOF-terminated.
        assert tokens[-1].type.value == "eof"

    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet="SELECT FROMWHERE*(),'=<>0123456789abcxyz_ ", max_size=100))
    def test_parse_total_or_typed_error(self, text):
        try:
            parse(text)
        except SQLError:
            pass  # LexerError / ParseError are the only acceptable failures


class TestDigestFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="SELECT FROM t WHERE a=1'x'2 ", max_size=80))
    def test_digest_total_on_lexable_input(self, text):
        try:
            tokenize(text)
        except SQLError:
            return
        # Lexable input always canonicalizes and digests.
        assert len(digest(text)) == 32

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_digest_literal_independence(self, a, b):
        assert digest(f"SELECT * FROM t WHERE x = {a}") == digest(
            f"SELECT * FROM t WHERE x = {b}"
        )

    def test_canonicalize_idempotent_on_canonical_text(self):
        text = canonicalize("SELECT * FROM t WHERE a = 5 AND b = 'x'")
        assert canonicalize(text) == text


class TestServerFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=80))
    def test_server_survives_arbitrary_statements(self, text):
        server = MySQLServer()
        session = server.connect("fuzzer")
        try:
            server.execute(session, text)
        except Exception as exc:
            # Any library error is fine; session must stay usable.
            from repro.errors import ReproError

            assert isinstance(exc, ReproError), type(exc)
        result = server.execute(
            session, "SELECT * FROM information_schema.processlist"
        )
        assert result.rows  # the session survived

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                   blacklist_characters="'"),
            max_size=40,
        )
    )
    def test_string_literals_roundtrip_through_storage(self, text):
        server = MySQLServer()
        session = server.connect()
        server.execute(session, "CREATE TABLE f (id INT PRIMARY KEY, v TEXT)")
        server.execute(session, f"INSERT INTO f (id, v) VALUES (1, '{text}')")
        result = server.execute(session, "SELECT v FROM f WHERE id = 1")
        assert result.rows == ((text,),)

"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import LexerError, ParseError
from repro.sql import (
    Aggregate,
    BetweenCondition,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    MatchCondition,
    Select,
    Update,
    parse,
    tokenize,
)
from repro.sql.ast import is_write
from repro.sql.lexer import TokenType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT name FROM customers")
        kinds = [t.type for t in tokens[:-1]]
        assert kinds == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ]

    def test_string_literal_keeps_raw_text(self):
        tokens = tokenize("SELECT * FROM t WHERE state = 'IN'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].text == "'IN'"
        assert strings[0].value == "IN"

    def test_numbers_including_negative(self):
        tokens = tokenize("WHERE age >= -25")
        numbers = [t for t in tokens if t.type is TokenType.NUMBER]
        assert numbers[0].value == -25

    def test_hex_literal(self):
        tokens = tokenize("WHERE c = x'deadbeef'")
        hexes = [t for t in tokens if t.type is TokenType.HEX]
        assert hexes[0].value == bytes.fromhex("deadbeef")

    def test_two_char_operators(self):
        tokens = tokenize("a >= 1 AND b <= 2 AND c != 3 AND d <> 4")
        ops = [t.text for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == [">=", "<=", "!=", "<>"]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("SELECT 'oops")

    def test_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @foo")

    def test_invalid_hex(self):
        with pytest.raises(LexerError):
            tokenize("WHERE c = x'zz'")

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestParseSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM customers")
        assert isinstance(stmt, Select)
        assert stmt.table == "customers"
        assert stmt.is_star

    def test_columns(self):
        stmt = parse("SELECT name, age FROM customers")
        assert stmt.columns == ("name", "age")

    def test_where_equality(self):
        stmt = parse("SELECT * FROM customers WHERE state = 'IN'")
        assert stmt.where.conditions == (Comparison("state", "=", "IN"),)

    def test_where_conjunction(self):
        stmt = parse("SELECT * FROM customers WHERE state = 'IN' AND age >= 25")
        assert len(stmt.where.conditions) == 2
        assert stmt.where.columns == ("state", "age")

    def test_between(self):
        stmt = parse("SELECT * FROM t WHERE id BETWEEN 5 AND 10")
        assert stmt.where.conditions == (BetweenCondition("id", 5, 10),)

    def test_match(self):
        stmt = parse("SELECT * FROM docs WHERE MATCH(body, 'contract')")
        assert stmt.where.conditions == (MatchCondition("body", "contract"),)

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t WHERE a = 10")
        assert stmt.aggregate == Aggregate(func="count", column=None)

    def test_ashe_sum(self):
        stmt = parse("SELECT ashe_sum(c3) FROM t")
        assert stmt.aggregate == Aggregate(func="ashe_sum", column="c3")

    def test_order_and_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY id LIMIT 5")
        assert stmt.order_by == "id"
        assert stmt.limit == 5

    def test_schema_qualified_table(self):
        stmt = parse("SELECT * FROM information_schema.processlist")
        assert stmt.table == "information_schema.processlist"

    def test_raw_preserved(self):
        sql = "SELECT * FROM t WHERE a = 'xyzzy'"
        assert parse(sql).raw == sql


class TestParseWrites:
    def test_insert_single(self):
        stmt = parse("INSERT INTO t (id, name) VALUES (1, 'bob')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("id", "name")
        assert stmt.rows == ((1, "bob"),)

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (id) VALUES (1), (2), (3)")
        assert stmt.rows == ((1,), (2,), (3,))

    def test_insert_null(self):
        stmt = parse("INSERT INTO t (a) VALUES (NULL)")
        assert stmt.rows == ((None,),)

    def test_update(self):
        stmt = parse("UPDATE t SET name = 'x', age = 3 WHERE id = 7")
        assert isinstance(stmt, Update)
        assert stmt.assignments == (("name", "x"), ("age", 3))
        assert stmt.where.conditions[0].value == 7

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 9")
        assert isinstance(stmt, Delete)

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None

    def test_is_write_classification(self):
        assert is_write(parse("INSERT INTO t (a) VALUES (1)"))
        assert is_write(parse("UPDATE t SET a = 1"))
        assert is_write(parse("DELETE FROM t"))
        assert not is_write(parse("SELECT * FROM t"))


class TestParseCreate:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, data BLOB)")
        assert isinstance(stmt, CreateTable)
        assert stmt.primary_key == "id"
        assert [c.type for c in stmt.columns] == ["INT", "TEXT", "BLOB"]

    def test_no_primary_key(self):
        stmt = parse("CREATE TABLE t (a INT, b TEXT)")
        assert stmt.primary_key is None

    def test_two_primary_keys_rejected(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)")

    def test_bad_type_rejected(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a FLOAT)")


class TestParseErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("DROP TABLE t")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t extra stuff here")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT *")

    def test_bad_limit(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT x")

    def test_semicolon_accepted(self):
        stmt = parse("SELECT * FROM t;")
        assert isinstance(stmt, Select)

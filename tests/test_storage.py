"""Unit and property tests for records, pages, tablespaces, and buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BufferPoolError, PageError, RecordError, StorageError
from repro.storage import (
    BufferPool,
    Page,
    PageType,
    Tablespace,
    decode_row,
    encode_row,
)
from repro.storage.record import row_size

value_strategy = st.one_of(
    st.none(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.text(max_size=50),
    st.binary(max_size=50),
)


class TestRecordCodec:
    def test_roundtrip_mixed(self):
        row = (1, "bob", b"\x00\xff", None)
        decoded, _ = decode_row(encode_row(row))
        assert decoded == row

    def test_empty_row(self):
        decoded, _ = decode_row(encode_row(()))
        assert decoded == ()

    def test_int_bounds(self):
        for value in (-(2**63), 2**63 - 1):
            decoded, _ = decode_row(encode_row((value,)))
            assert decoded == (value,)

    def test_int_overflow_rejected(self):
        with pytest.raises(RecordError):
            encode_row((2**63,))

    def test_bool_rejected(self):
        with pytest.raises(RecordError):
            encode_row((True,))

    def test_unsupported_type_rejected(self):
        with pytest.raises(RecordError):
            encode_row((3.5,))

    def test_truncated_rejected(self):
        blob = encode_row((12345,))
        with pytest.raises(RecordError):
            decode_row(blob[:-2])

    def test_row_size_matches(self):
        row = (7, "hello")
        assert row_size(row) == len(encode_row(row))

    @settings(max_examples=80)
    @given(st.lists(value_strategy, max_size=8))
    def test_roundtrip_property(self, values):
        row = tuple(values)
        decoded, _ = decode_row(encode_row(row))
        assert decoded == row


class TestPage:
    def test_insert_read(self):
        page = Page(0, PageType.INDEX_LEAF)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.num_records == 1

    def test_insert_at_slot(self):
        page = Page(0)
        page.insert(b"b")
        page.insert(b"a", slot=0)
        assert page.records == [b"a", b"b"]

    def test_replace_returns_old(self):
        page = Page(0)
        page.insert(b"old")
        assert page.replace(0, b"new") == b"old"
        assert page.read(0) == b"new"

    def test_delete_returns_old(self):
        page = Page(0)
        page.insert(b"x")
        assert page.delete(0) == b"x"
        assert page.num_records == 0

    def test_overflow_rejected(self):
        page = Page(0, capacity=16)
        with pytest.raises(PageError):
            page.insert(b"x" * 32)

    def test_free_bytes_accounting(self):
        page = Page(0, capacity=100)
        page.insert(b"abcd")
        assert page.used_bytes == 8  # 4 payload + 4 length prefix
        assert page.free_bytes == 92
        page.delete(0)
        assert page.used_bytes == 0

    def test_bad_slot_rejected(self):
        page = Page(0)
        with pytest.raises(PageError):
            page.read(0)
        with pytest.raises(PageError):
            page.delete(5)

    def test_negative_page_id_rejected(self):
        with pytest.raises(PageError):
            Page(-1)

    def test_serialization_roundtrip(self):
        page = Page(3, PageType.INDEX_INTERNAL, level=2)
        page.insert(b"one")
        page.insert(b"two")
        restored = Page.from_bytes(page.to_bytes())
        assert restored.page_id == 3
        assert restored.page_type is PageType.INDEX_INTERNAL
        assert restored.level == 2
        assert restored.records == [b"one", b"two"]


class TestTablespace:
    def test_allocate_sequential_ids(self):
        space = Tablespace(1, "t")
        assert space.allocate().page_id == 0
        assert space.allocate().page_id == 1

    def test_page_lookup(self):
        space = Tablespace(1, "t")
        page = space.allocate()
        assert space.page(page.page_id) is page

    def test_unknown_page_rejected(self):
        space = Tablespace(1, "t")
        with pytest.raises(StorageError):
            space.page(99)

    def test_free(self):
        space = Tablespace(1, "t")
        page = space.allocate()
        space.free(page.page_id)
        assert not space.has_page(page.page_id)
        with pytest.raises(StorageError):
            space.free(page.page_id)

    def test_serialization_roundtrip(self):
        space = Tablespace(7, "customers")
        page = space.allocate(PageType.INDEX_LEAF)
        page.insert(b"row-bytes")
        restored = Tablespace.from_bytes(space.to_bytes())
        assert restored.space_id == 7
        assert restored.name == "customers"
        assert restored.page(page.page_id).records == [b"row-bytes"]
        # id allocation continues past restored pages
        assert restored.allocate().page_id == page.page_id + 1


class TestBufferPool:
    def test_touch_and_contains(self):
        pool = BufferPool(capacity=4)
        pool.touch(1, 10)
        assert pool.contains(1, 10)
        assert not pool.contains(1, 11)

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.touch(1, 1)
        pool.touch(1, 2)
        pool.touch(1, 3)  # evicts page 1
        assert not pool.contains(1, 1)
        assert pool.contains(1, 2)
        assert pool.contains(1, 3)

    def test_touch_refreshes_recency(self):
        pool = BufferPool(capacity=2)
        pool.touch(1, 1)
        pool.touch(1, 2)
        pool.touch(1, 1)  # page 1 now MRU
        pool.touch(1, 3)  # evicts page 2
        assert pool.contains(1, 1)
        assert not pool.contains(1, 2)

    def test_access_counts(self):
        pool = BufferPool(capacity=4)
        for _ in range(5):
            pool.touch(1, 9)
        assert pool.access_count(1, 9) == 5
        assert pool.access_count(1, 8) == 0

    def test_stats(self):
        pool = BufferPool(capacity=2)
        pool.touch(1, 1)
        pool.touch(1, 1)
        pool.touch(1, 2)
        pool.touch(1, 3)
        stats = pool.stats
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 1

    def test_dump_mru_first(self):
        pool = BufferPool(capacity=4)
        pool.touch(1, 1, level=2)
        pool.touch(1, 2, level=1)
        pool.touch(1, 3, level=0)
        dump = pool.dump()
        assert [e.page_id for e in dump.entries] == [3, 2, 1]
        assert dump.entries[0].level == 0

    def test_dump_text_format(self):
        pool = BufferPool(capacity=4)
        pool.touch(5, 7, level=1)
        text = pool.dump().to_text()
        assert "5,7,1,1" in text

    def test_clear(self):
        pool = BufferPool(capacity=4)
        pool.touch(1, 1)
        pool.clear()
        assert pool.resident_pages == 0

    def test_bad_capacity(self):
        with pytest.raises(BufferPoolError):
            BufferPool(capacity=0)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, accesses):
        pool = BufferPool(capacity=5)
        for page_id in accesses:
            pool.touch(0, page_id)
        assert pool.resident_pages <= 5

"""Tests for the forensic CLI tools."""

import json

import pytest

from repro.tools import binlog_dump, bufferpool, demo, logparse, memscan, surface


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("stolen-disk")
    rc = demo.main([str(out), "--with-memory"])
    assert rc == 0
    return out


class TestDemoTool:
    def test_writes_all_artifacts(self, artifact_dir):
        names = {p.name for p in artifact_dir.iterdir()}
        assert {
            "redo.log",
            "undo.log",
            "binlog.txt",
            "ib_buffer_pool",
            "customers.ibd",
            "memory.dump",
        } <= names

    def test_disk_only_mode(self, tmp_path):
        rc = demo.main([str(tmp_path / "out")])
        assert rc == 0
        names = {p.name for p in (tmp_path / "out").iterdir()}
        assert "memory.dump" not in names
        assert "redo.log" in names


class TestBinlogTool:
    def test_prints_events(self, artifact_dir, capsys):
        rc = binlog_dump.main([str(artifact_dir / "binlog.txt")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "INSERT INTO customers" in out
        assert "UPDATE customers SET balance" in out
        assert "events, window" in out

    def test_date_lsn(self, artifact_dir, capsys):
        rc = binlog_dump.main([str(artifact_dir / "binlog.txt"), "--date-lsn", "100"])
        assert rc == 0
        assert "estimated commit time at lsn 100" in capsys.readouterr().out

    def test_empty_binlog_fails(self, tmp_path, capsys):
        empty = tmp_path / "binlog.txt"
        empty.write_text("")
        assert binlog_dump.main([str(empty)]) == 1


class TestLogparseTool:
    def test_reconstructs_history(self, artifact_dir, capsys):
        rc = logparse.main(
            [
                "--redo", str(artifact_dir / "redo.log"),
                "--undo", str(artifact_dir / "undo.log"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "INSERT INTO customers VALUES" in out
        assert "modifications reconstructed" in out

    def test_table_filter(self, artifact_dir, capsys):
        rc = logparse.main(
            ["--redo", str(artifact_dir / "redo.log"), "--table", "nosuch"]
        )
        assert rc == 0
        assert "-- 0 modifications" in capsys.readouterr().out

    def test_requires_a_log(self, artifact_dir):
        with pytest.raises(SystemExit):
            logparse.main([])


class TestBufferpoolTool:
    def test_infers_paths(self, artifact_dir, capsys):
        rc = bufferpool.main([str(artifact_dir / "ib_buffer_pool")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traversals inferred" in out
        assert "L0" in out  # some chain reaches a leaf


class TestMemscanTool:
    def test_carves_sql(self, artifact_dir, capsys):
        rc = memscan.main([str(artifact_dir / "memory.dump")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "carved SQL statements" in out
        assert "SELECT" in out

    def test_marker_count(self, artifact_dir, capsys):
        rc = memscan.main(
            [str(artifact_dir / "memory.dump"), "--marker", "customers"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "'customers':" in out

    def test_token_listing(self, artifact_dir, capsys):
        rc = memscan.main([str(artifact_dir / "memory.dump"), "--tokens"])
        assert rc == 0
        assert "candidate tokens" in capsys.readouterr().out


class TestSurfaceTool:
    def test_prints_figure1_matrix(self, capsys):
        rc = surface.main([])
        assert rc == 0
        out = capsys.readouterr().out
        assert "attack" in out
        for scenario in ("disk_theft", "sql_injection", "vm_snapshot", "full_compromise"):
            assert scenario in out
        # Figure 1 check counts: 1 / 2 / 3 / 3.
        rows = [line for line in out.splitlines() if not line.startswith("attack")]
        counts = [line.count("X") for line in rows]
        assert counts == [1, 2, 3, 3]

    def test_provider_listing(self, capsys):
        rc = surface.main(["--providers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registered providers" in out
        assert "redo_log_raw" in out
        assert "memory_dump" in out

    def test_json_mode(self, capsys):
        rc = surface.main(["--backend", "spark", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "spark"
        assert payload["matrix"]["disk_theft"]["logs"] is True
        names = {p["name"] for p in payload["providers"]}
        assert names == {"spark_event_log", "spark_executor_heaps"}

    def test_unknown_backend_is_input_error(self, capsys):
        rc = surface.main(["--backend", "oracle"])
        assert rc == 2
        assert "repro-surface:" in capsys.readouterr().err


class TestErrorExitCodes:
    """Every tool reports input errors on stderr and exits 2."""

    def test_binlog_missing_file(self, tmp_path, capsys):
        rc = binlog_dump.main([str(tmp_path / "nope.txt")])
        assert rc == 2
        assert "repro-binlog:" in capsys.readouterr().err

    def test_bufferpool_missing_file(self, tmp_path, capsys):
        rc = bufferpool.main([str(tmp_path / "nope")])
        assert rc == 2
        assert "repro-bufferpool:" in capsys.readouterr().err

    def test_logparse_missing_file(self, tmp_path, capsys):
        rc = logparse.main(["--redo", str(tmp_path / "nope.log")])
        assert rc == 2
        assert "repro-logparse:" in capsys.readouterr().err

    def test_memscan_missing_file(self, tmp_path, capsys):
        rc = memscan.main([str(tmp_path / "nope.dump")])
        assert rc == 2
        assert "repro-memscan:" in capsys.readouterr().err

    def test_demo_out_dir_collides_with_file(self, tmp_path, capsys):
        blocker = tmp_path / "out"
        blocker.write_text("not a directory")
        rc = demo.main([str(blocker)])
        assert rc == 2
        assert "repro-demo:" in capsys.readouterr().err

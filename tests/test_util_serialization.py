"""Unit tests for the byte-serialization helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RecordError
from repro.util import (
    decode_bytes,
    decode_str,
    decode_uint,
    encode_bytes,
    encode_str,
    encode_uint,
    read_uint,
)
from repro.util.text import format_bytes, truncate


class TestUintCodec:
    def test_roundtrip_u32(self):
        for value in (0, 1, 0xFFFFFFFF):
            assert decode_uint(encode_uint(value)) == value

    def test_roundtrip_u64(self):
        for value in (0, 1, 0xFFFFFFFFFFFFFFFF):
            assert decode_uint(encode_uint(value, 8), 8) == value

    def test_negative_rejected(self):
        with pytest.raises(RecordError):
            encode_uint(-1)

    def test_overflow_rejected(self):
        with pytest.raises(RecordError):
            encode_uint(1 << 32)

    def test_bad_width_rejected(self):
        with pytest.raises(RecordError):
            encode_uint(1, width=3)
        with pytest.raises(RecordError):
            decode_uint(b"abc", width=3)

    def test_decode_wrong_length(self):
        with pytest.raises(RecordError):
            decode_uint(b"abc")

    def test_read_uint_offsets(self):
        blob = encode_uint(7) + encode_uint(9)
        value, offset = read_uint(blob, 0)
        assert (value, offset) == (7, 4)
        value, offset = read_uint(blob, offset)
        assert (value, offset) == (9, 8)

    def test_read_uint_truncated(self):
        with pytest.raises(RecordError):
            read_uint(b"\x01\x02", 0)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert decode_uint(encode_uint(value)) == value


class TestBytesStrCodec:
    def test_bytes_roundtrip(self):
        payload, offset = decode_bytes(encode_bytes(b"hello"))
        assert payload == b"hello"
        assert offset == 9

    def test_empty_bytes(self):
        payload, _ = decode_bytes(encode_bytes(b""))
        assert payload == b""

    def test_str_roundtrip_unicode(self):
        text, _ = decode_str(encode_str("héllo wörld"))
        assert text == "héllo wörld"

    def test_truncated_bytes_rejected(self):
        blob = encode_bytes(b"hello")[:-1]
        with pytest.raises(RecordError):
            decode_bytes(blob)

    def test_invalid_utf8_rejected(self):
        blob = encode_bytes(b"\xff\xfe")
        with pytest.raises(RecordError):
            decode_str(blob)

    @given(st.binary(max_size=256))
    def test_bytes_property(self, payload):
        decoded, _ = decode_bytes(encode_bytes(payload))
        assert decoded == payload

    @given(st.text(max_size=128))
    def test_str_property(self, text):
        decoded, _ = decode_str(encode_str(text))
        assert decoded == text


class TestTextHelpers:
    def test_truncate_short(self):
        assert truncate("abc", 10) == "abc"

    def test_truncate_long(self):
        out = truncate("a" * 100, 10)
        assert len(out) == 10
        assert out.endswith("...")

    def test_truncate_tiny_limit(self):
        assert truncate("abcdef", 2) == "ab"

    def test_format_bytes_units(self):
        assert format_bytes(10) == "10 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert "MiB" in format_bytes(50 * 1024 * 1024)

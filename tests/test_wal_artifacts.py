"""WAL snapshot artifacts + the forensic readers that consume them."""

import pytest

from repro.forensics.wal_reader import (
    parse_wal_segments,
    read_checkpoint_state,
    read_checkpoints,
    reconstruct_wal_history,
    recovery_exposure,
)
from repro.server import MySQLServer, ServerConfig
from repro.snapshot import AttackScenario, StateQuadrant, capture, default_registry
from repro.wal import artifacts as wal_artifacts


def run_workload(server, rows=3):
    session = server.connect("app")
    server.execute(session, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    for i in range(rows):
        server.execute(
            session, f"INSERT INTO t (id, v) VALUES ({i}, 'secret-{i}')"
        )
    server.execute(session, "UPDATE t SET v = 'changed-0' WHERE id = 0")
    server.execute(session, "DELETE FROM t WHERE id = 1")
    return server


@pytest.fixture
def memory_server():
    return run_workload(MySQLServer())


@pytest.fixture
def paged_server(tmp_path):
    config = ServerConfig(storage="paged", data_dir=str(tmp_path / "db"))
    server = run_workload(MySQLServer(config=config))
    yield server
    server.close()


class TestProviders:
    def test_registered_with_expected_metadata(self):
        registry = default_registry()
        segs = registry.get("wal_segments")
        assert segs.quadrant is StateQuadrant.PERSISTENT_DB
        assert segs.artifact_class == "logs"
        assert set(segs.spec_sinks) == {"redo_log", "undo_log"}
        assert not segs.requires_escalation

        dpt = registry.get("dirty_page_table")
        assert dpt.quadrant is StateQuadrant.VOLATILE_DB
        assert dpt.artifact_class == "data_structures"
        assert dpt.requires_escalation

        rec = registry.get("recovery_report")
        assert rec.quadrant is StateQuadrant.PERSISTENT_DB
        assert rec.artifact_class == "logs"

    def test_providers_have_forensic_readers(self):
        for provider in wal_artifacts.providers():
            assert provider.forensic_reader.startswith("repro.forensics")

    def test_disk_theft_captures_wal_segments(self, memory_server):
        snap = capture(memory_server, AttackScenario.DISK_THEFT)
        segments = snap.get("wal_segments")
        assert segments and all(isinstance(v, bytes) for v in segments.values())

    def test_dirty_page_table_gated_on_paged_and_escalation(
        self, memory_server, paged_server
    ):
        # Memory mode: provider disabled (no paged buffer pool).
        snap = capture(memory_server, AttackScenario.SQL_INJECTION, escalated=True)
        assert snap.get("dirty_page_table") is None
        # Paged mode, unescalated SQL injection: withheld.
        snap = capture(paged_server, AttackScenario.SQL_INJECTION)
        assert snap.get("dirty_page_table") is None
        # Paged + escalated: the live (table, page, rec-LSN) triples.
        snap = capture(paged_server, AttackScenario.SQL_INJECTION, escalated=True)
        assert snap.get("dirty_page_table") is not None

    def test_recovery_report_absent_on_clean_server(self, memory_server):
        snap = capture(memory_server, AttackScenario.DISK_THEFT)
        assert snap.get("recovery_report") is None

    def test_recovery_report_captured_after_recovery(self, tmp_path):
        from repro.engine import StorageEngine
        from repro.wal.recovery import recover_engine

        data_dir = str(tmp_path / "crashed")
        engine = StorageEngine(storage="paged", data_dir=data_dir, wal_sync=False)
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"v")
        engine.commit(txn)
        engine.simulate_crash()
        recovered = recover_engine(data_dir, wal_sync=False)

        server = MySQLServer(
            config=ServerConfig(storage="paged", data_dir=str(tmp_path / "other"))
        )
        server.engine.close()
        server.engine = recovered  # a server brought up on the recovered engine
        snap = capture(server, AttackScenario.DISK_THEFT)
        report = snap.get("recovery_report")
        assert report is not None
        assert report["committed_txns"] == [txn.txn_id]
        recovered.close()


class TestForensicReaders:
    def test_parse_wal_segments_decodes_all_kinds(self, memory_server):
        records = parse_wal_segments(memory_server.engine.wal_segments())
        kinds = {r.kind for r in records}
        assert {"redo", "undo", "txn_begin", "txn_commit", "table_register"} <= kinds
        redo = [r for r in records if r.kind == "redo"]
        assert all(r.table == "t" for r in redo)
        assert all(r.txn_id is not None for r in redo)

    def test_history_survives_circular_log_eviction(self, tmp_path):
        # The durable WAL is the superset surface: shrink the circular
        # redo window until it evicts, then reconstruct the full timeline
        # from the flushed segments anyway.
        from repro.engine import StorageEngine

        engine = StorageEngine(redo_capacity=256, undo_capacity=256)
        engine.register_table("t")
        for i in range(30):
            txn = engine.begin()
            engine.insert(txn, "t", i, b"x" * 40)
            engine.commit(txn)
        assert engine.redo_log.total_evicted > 0
        history = reconstruct_wal_history(engine.wal.segments())
        assert [key for _, _, key, _, _, _ in history] == list(range(30))

    def test_read_checkpoints_exposes_dirty_pages_and_active_txns(
        self, paged_server
    ):
        engine = paged_server.engine
        txn = engine.begin()
        engine.insert(txn, "t", 100, b"inflight")
        engine.checkpoint()
        views = read_checkpoints(engine.wal_segments())
        assert views
        last = views[-1]
        assert txn.txn_id in last.active_txns
        engine.commit(txn)

    def test_read_checkpoint_state_joins_header_lsns(self, paged_server):
        engine = paged_server.engine
        engine.checkpoint()
        state = read_checkpoint_state(
            engine.checkpoint_lsns(), engine.wal_segments()
        )
        assert "t" in state
        assert state["t"]["header_checkpoint_lsn"] > 0
        assert "dirty_pages_at_last_checkpoint" in state["t"]

    def test_recovery_exposure_summary(self):
        report = {
            "loser_txns": [7],
            "committed_txns": [1, 2],
            "undo_applied": 3,
            "redo_applied": 9,
            "torn_pages": [("t", 4)],
            "tables": ["t"],
            "end_lsn": 1234,
        }
        summary = recovery_exposure(report)
        assert summary["in_flight_txns"] == [7]
        assert summary["operations_undone"] == 3
        assert summary["torn_pages"] == [("t", 4)]
        assert summary["log_span_bytes"] == 1234

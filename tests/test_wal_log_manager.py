"""Unit tests for the unified WAL: frame codec, LogManager, facades."""

import os

import pytest

from repro.errors import LogError, WalError
from repro.forensics.redo_undo import parse_redo_log, parse_undo_log
from repro.wal import LogManager, LogStream, LsnCounter
from repro.wal.log_manager import segment_name
from repro.wal.records import (
    FRAME_HEADER,
    CheckpointBody,
    RedoRecord,
    UndoRecord,
    WalRecordType,
    pack_frame,
    parse_frames,
)


def redo(txn=1, table="t", op="insert", key=1, image=b"row"):
    return RedoRecord(txn, table, op, key, image)


def undo(txn=1, table="t", op="update", key=1, image=b"old"):
    return UndoRecord(txn, table, op, key, image)


class TestFrameCodec:
    def test_roundtrip_all_types(self):
        body = redo().to_bytes()
        data = b"".join(
            (
                pack_frame(10, WalRecordType.REDO, body),
                pack_frame(10 + len(body), WalRecordType.TXN_COMMIT, b"\x01" * 8),
            )
        )
        frames, error = parse_frames(data)
        assert error is None
        assert [f.rtype for f in frames] == [
            WalRecordType.REDO,
            WalRecordType.TXN_COMMIT,
        ]
        assert frames[0].decode() == redo()
        assert frames[0].lsn == 10
        assert frames[0].lsn_advance == len(body)
        assert frames[1].lsn_advance == 0

    def test_crc_mismatch_strict_raises(self):
        data = bytearray(pack_frame(0, WalRecordType.REDO, redo().to_bytes()))
        data[-1] ^= 0xFF
        with pytest.raises(WalError, match="checksum mismatch"):
            parse_frames(bytes(data))

    def test_torn_tail_tolerant_stops(self):
        good = pack_frame(0, WalRecordType.REDO, redo().to_bytes())
        torn = good + pack_frame(50, WalRecordType.UNDO, undo().to_bytes())[:-3]
        frames, error = parse_frames(torn, strict=False)
        assert len(frames) == 1
        assert "truncated frame body" in error

    def test_truncated_header_tolerant(self):
        good = pack_frame(0, WalRecordType.TXN_BEGIN, b"\x00" * 8)
        frames, error = parse_frames(good + b"\x01\x02", strict=False)
        assert len(frames) == 1
        assert "truncated frame header" in error

    def test_unknown_type_rejected(self):
        bad = pack_frame(0, WalRecordType.REDO, b"")
        # Patch the type byte (last header byte) to an unknown value and
        # re-checksum so only the type is wrong.
        import struct
        import zlib

        crc = zlib.crc32(bytes([99])) & 0xFFFFFFFF
        bad = struct.pack("<QIIB", 0, 0, crc, 99)
        with pytest.raises(WalError, match="unknown record type"):
            parse_frames(bad)

    def test_checkpoint_body_roundtrip(self):
        body = CheckpointBody(1234, (("t", 3, 700), ("u", 1, 650)), (5, 9))
        decoded, _ = CheckpointBody.from_bytes(body.to_bytes())
        assert decoded == body

    def test_negative_key_roundtrip(self):
        record = redo(key=-42)
        decoded, _ = RedoRecord.from_bytes(record.to_bytes())
        assert decoded.key == -42


class TestLogStream:
    def test_capacity_validated(self):
        with pytest.raises(LogError):
            LogStream(0)

    def test_check_fits_rejects_oversize(self):
        stream = LogStream(16)
        with pytest.raises(LogError, match="exceeds log capacity"):
            stream.check_fits(b"x" * 17)

    def test_eviction_oldest_first(self):
        stream = LogStream(10)
        stream.admit(0, b"aaaa", "a")
        stream.admit(4, b"bbbb", "b")
        stream.admit(8, b"cccc", "c")  # 12 bytes used -> evict "a"
        assert stream.records() == ["b", "c"]
        assert stream.oldest_lsn == 4
        assert stream.newest_lsn == 8
        assert stream.total_appended == 3
        assert stream.total_evicted == 1
        assert stream.used_bytes == 8


class TestLogManagerAppend:
    def test_redo_undo_advance_by_length(self):
        mgr = LogManager()
        r, u = redo(), undo()
        lsn_r = mgr.append_redo(r)
        assert lsn_r == 0
        assert mgr.lsn.current == len(r.to_bytes())
        lsn_u = mgr.append_undo(u)
        assert lsn_u == len(r.to_bytes())
        assert mgr.lsn.current == len(r.to_bytes()) + len(u.to_bytes())

    def test_control_records_advance_zero(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        before = mgr.lsn.current
        assert mgr.append_begin(7) == before
        assert mgr.append_commit(7) == before
        assert mgr.append_abort(8) == before
        assert mgr.append_clr(redo(op="delete", image=b"")) == before
        assert mgr.append_checkpoint((), ()) == before
        assert mgr.append_table_register("t") == before
        assert mgr.lsn.current == before

    def test_control_records_not_in_retention_streams(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        mgr.append_clr(redo(op="delete", image=b""))
        mgr.append_commit(1)
        assert mgr.redo_stream.num_records == 1
        assert mgr.undo_stream.num_records == 0

    def test_replaying_suppresses_appends(self):
        mgr = LogManager()
        with mgr.replaying():
            mgr.append_redo(redo())
            mgr.append_commit(1)
        assert mgr.lsn.current == 0
        mgr.flush()
        assert mgr.records() == []

    def test_closed_manager_rejects_appends(self):
        mgr = LogManager()
        mgr.close()
        with pytest.raises(WalError, match="closed"):
            mgr.append_redo(redo())

    def test_bad_segment_bytes_rejected(self):
        with pytest.raises(WalError, match="segment size"):
            LogManager(segment_bytes=0)

    def test_shared_lsn_counter(self):
        counter = LsnCounter(start=500)
        mgr = LogManager(lsn=counter)
        mgr.append_redo(redo())
        assert counter.current == 500 + len(redo().to_bytes())


class TestGroupFlush:
    def test_segments_exclude_pending(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        assert mgr.segments() == {segment_name(1): b""}
        assert mgr.flush() == 1
        frames, error = parse_frames(mgr.segments()[segment_name(1)])
        assert error is None
        assert len(frames) == 1

    def test_flushed_lsn_tracks_flush(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        assert mgr.flushed_lsn == 0
        mgr.flush()
        assert mgr.flushed_lsn == mgr.lsn.current

    def test_flush_to_is_noop_when_covered(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        mgr.flush()
        flushes_before = mgr.stats["flushes"]
        mgr.flush_to(mgr.flushed_lsn)  # already durable
        assert mgr.stats["flushes"] == flushes_before

    def test_flush_to_forces_pending(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        mgr.flush_to(mgr.lsn.current)
        assert mgr.stats["pending_frames"] == 0
        assert mgr.flushed_lsn == mgr.lsn.current

    def test_empty_flush_returns_zero(self):
        mgr = LogManager()
        assert mgr.flush() == 0

    def test_crash_discards_pending(self):
        mgr = LogManager()
        mgr.append_redo(redo())
        mgr.flush()
        mgr.append_redo(redo(key=2))
        mgr.crash()
        assert mgr.closed
        frames, _ = parse_frames(mgr.segments()[segment_name(1)])
        assert len(frames) == 1  # the unflushed second record is gone


class TestSegments:
    def test_rollover_at_segment_bytes(self):
        mgr = LogManager(segment_bytes=128, sync=False)
        for i in range(10):
            mgr.append_redo(redo(key=i))
            mgr.flush()
        assert len(mgr.segment_names()) > 1
        assert mgr.segment_names() == sorted(mgr.segment_names())
        # Every segment except possibly the last stays under the roll size
        # plus one frame (a frame is never split across segments).
        all_frames = mgr.records()
        assert len(all_frames) == 10
        assert [f.decode().key for f in all_frames] == list(range(10))

    def test_rolled_segments_fsynced_before_seal(self, tmp_path):
        # A flush that rolls segments must fsync each sealed segment, not
        # only the final active one — otherwise "committed == durable"
        # fails across a roll boundary on power loss.
        mgr = LogManager(wal_dir=str(tmp_path), segment_bytes=64, sync=True)
        for i in range(8):
            mgr.append_redo(redo(key=i))
        mgr.flush()  # one batch spanning several segments
        n_segments = len(mgr.segment_names())
        assert n_segments > 1
        # One fsync per sealed segment plus one for the final active one.
        assert mgr.stats["syncs"] == n_segments
        mgr.close()

    def test_memory_mode_drops_oldest_sealed(self):
        mgr = LogManager(segment_bytes=64, max_resident_segments=2)
        for i in range(12):
            mgr.append_redo(redo(key=i))
            mgr.flush()
        segs = mgr.segments()
        assert mgr.stats["dropped_segments"] > 0
        dropped = [name for name, data in segs.items() if data == b""]
        assert dropped == sorted(dropped)
        # The newest segments are still materialised.
        assert segs[mgr.segment_names()[-1]] != b""

    def test_disk_mode_retains_all_segments(self, tmp_path):
        mgr = LogManager(wal_dir=str(tmp_path), segment_bytes=64, sync=False)
        for i in range(12):
            mgr.append_redo(redo(key=i))
            mgr.flush()
        segs = mgr.segments()
        assert len(segs) > 2
        assert all(data for data in segs.values())
        assert mgr.stats["dropped_segments"] == 0
        mgr.close()

    def test_checksum_changes_with_content(self):
        mgr = LogManager()
        empty = mgr.checksum()
        mgr.append_redo(redo())
        mgr.flush()
        assert mgr.checksum() != empty


class TestResume:
    def test_resume_restores_lsn_and_streams(self, tmp_path):
        mgr = LogManager(wal_dir=str(tmp_path), sync=False)
        for i in range(5):
            mgr.append_redo(redo(key=i))
            mgr.append_undo(undo(key=i))
        mgr.append_commit(1)
        mgr.flush()
        end_lsn = mgr.lsn.current
        mgr.close()

        resumed = LogManager(wal_dir=str(tmp_path), sync=False)
        assert resumed.lsn.current == end_lsn
        assert resumed.resumed_frames == 11
        assert resumed.redo_stream.num_records == 5
        assert resumed.undo_stream.num_records == 5
        assert resumed.truncated_tail is None
        # Appends continue the log rather than restarting it.
        resumed.append_redo(redo(key=99))
        resumed.flush()
        keys = [
            f.decode().key
            for f in resumed.records()
            if f.rtype is WalRecordType.REDO
        ]
        assert keys == [0, 1, 2, 3, 4, 99]
        resumed.close()

    def test_resume_truncates_torn_tail(self, tmp_path):
        mgr = LogManager(wal_dir=str(tmp_path), sync=False)
        mgr.append_redo(redo(key=1))
        mgr.flush()
        mgr.close()
        path = tmp_path / segment_name(1)
        good_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef")  # torn partial frame

        resumed = LogManager(wal_dir=str(tmp_path), sync=False)
        assert resumed.truncated_tail is not None
        assert path.stat().st_size == good_size
        assert resumed.resumed_frames == 1
        resumed.close()

    def test_corrupt_interior_segment_rejected(self, tmp_path):
        mgr = LogManager(wal_dir=str(tmp_path), segment_bytes=64, sync=False)
        for i in range(8):
            mgr.append_redo(redo(key=i))
            mgr.flush()
        assert len(mgr.segment_names()) >= 3
        first = tmp_path / mgr.segment_names()[0]
        mgr.close()
        data = bytearray(first.read_bytes())
        data[FRAME_HEADER.size] ^= 0xFF  # flip a body byte -> CRC fails
        first.write_bytes(bytes(data))
        with pytest.raises(WalError, match="corrupt interior"):
            LogManager(wal_dir=str(tmp_path), sync=False)

    def test_resume_rolls_into_new_segment(self, tmp_path):
        mgr = LogManager(wal_dir=str(tmp_path), segment_bytes=64, sync=False)
        for i in range(4):
            mgr.append_redo(redo(key=i))
            mgr.flush()
        names_before = mgr.segment_names()
        mgr.close()
        resumed = LogManager(wal_dir=str(tmp_path), segment_bytes=64, sync=False)
        for i in range(4, 8):
            resumed.append_redo(redo(key=i))
            resumed.flush()
        assert len(resumed.segment_names()) > len(names_before)
        keys = [
            f.decode().key
            for f in resumed.records()
            if f.rtype is WalRecordType.REDO
        ]
        assert keys == list(range(8))
        resumed.close()


class TestFacadeByteIdentity:
    """The circular-log views must stay byte-identical through the manager."""

    def test_raw_bytes_framing_matches_forensic_parser(self):
        mgr = LogManager()
        records = [redo(key=i, image=bytes([i])) for i in range(3)]
        lsns = [mgr.append_redo(r) for r in records]
        parsed = parse_redo_log(mgr.redo_stream.raw_bytes())
        assert parsed == list(zip(lsns, records))

    def test_undo_raw_bytes_parse(self):
        mgr = LogManager()
        records = [undo(key=i) for i in range(3)]
        lsns = [mgr.append_undo(r) for r in records]
        parsed = parse_undo_log(mgr.undo_stream.raw_bytes())
        assert parsed == list(zip(lsns, records))

    def test_engine_facades_share_manager_lsn(self):
        from repro.engine import StorageEngine

        engine = StorageEngine()
        assert engine.redo_log.manager is engine.wal
        assert engine.undo_log.manager is engine.wal
        assert engine.lsn is engine.wal.lsn
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"v")
        engine.commit(txn)
        # The same append is visible through the facade and the WAL.
        assert engine.redo_log.num_records == 1
        redo_frames = [
            f for f in engine.wal.records() if f.rtype is WalRecordType.REDO
        ]
        assert len(redo_frames) == 1
        assert redo_frames[0].decode().key == 1


class TestCombinedShardedWal:
    def test_shard_qualified_segments(self):
        from repro.server.sharding import ShardedEngine

        engine = ShardedEngine(num_shards=2)
        engine.register_table("t")
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"v")
        engine.commit(txn)
        segs = engine.wal_segments()
        assert all("/" in name for name in segs)
        prefixes = {name.split("/", 1)[0] for name in segs}
        assert prefixes == {"shard0", "shard1"}
        stats = engine.wal.stats
        assert stats["shards"] == 2

"""ARIES restart recovery: kill-at-random-point, torn pages, shards.

The central invariant (acceptance criterion of the WAL refactor): after a
crash at *any* point in a workload, recovery rebuilds exactly the committed
prefix — every transaction whose COMMIT reached the durable log is fully
present, every other transaction is fully absent. The kill-at-random-point
test checks this for hundreds of seeded (workload, crash-point) pairs
against a shadow dict maintained alongside the generated workload.
"""

import os
import random

import pytest

from repro.engine import StorageEngine
from repro.errors import EngineError, RecoveryError
from repro.server.sharding import ShardedEngine
from repro.wal.recovery import recover_engine, recover_sharded_engine

TABLES = ("a", "b")
KEYS = 16

# Small frames + tiny fanout force evictions (and thus the WAL rule) and
# multi-level trees even in short workloads; sync off for speed — the
# flush boundary semantics are identical.
ENGINE_KWARGS = dict(
    buffer_pool_capacity=8,
    btree_fanout=4,
    wal_segment_bytes=512,
    wal_sync=False,
)


def build_workload(seed):
    """Deterministic (steps, snapshots): snapshots[i] is the committed
    state {table: {key: value}} after executing steps[0..i]."""
    rng = random.Random(seed)
    steps, snapshots = [], []
    committed = {t: {} for t in TABLES}
    value_counter = [0]

    def emit(step):
        steps.append(step)
        snapshots.append({t: dict(committed[t]) for t in TABLES})

    def fresh_value(table, key):
        value_counter[0] += 1
        return f"{table}:{key}:{value_counter[0]}".encode()

    for _ in range(rng.randint(4, 8)):  # transactions
        if rng.random() < 0.2:
            emit(("checkpoint",))
        working = {t: dict(committed[t]) for t in TABLES}
        txn_steps = []
        emit(("begin",))
        for _ in range(rng.randint(1, 5)):  # ops per transaction
            table = rng.choice(TABLES)
            present = sorted(working[table])
            absent = sorted(set(range(KEYS)) - set(present))
            choices = []
            if absent:
                choices.append("insert")
            if present:
                choices.extend(["update", "delete"])
            op = rng.choice(choices)
            if op == "insert":
                key = rng.choice(absent)
                value = fresh_value(table, key)
                working[table][key] = value
                txn_steps.append(("insert", table, key, value))
            elif op == "update":
                key = rng.choice(present)
                value = fresh_value(table, key)
                working[table][key] = value
                txn_steps.append(("update", table, key, value))
            else:
                key = rng.choice(present)
                del working[table][key]
                txn_steps.append(("delete", table, key))
            emit(txn_steps[-1])
        if rng.random() < 0.75:
            committed = working
            emit(("commit",))
        else:
            emit(("rollback",))
    return steps, snapshots


def run_steps(engine, steps):
    """Execute workload steps against a live engine; returns the open txn
    (if the run stops mid-transaction)."""
    txn = None
    for step in steps:
        kind = step[0]
        if kind == "begin":
            txn = engine.begin()
        elif kind == "commit":
            engine.commit(txn)
            txn = None
        elif kind == "rollback":
            engine.rollback(txn)
            txn = None
        elif kind == "checkpoint":
            engine.checkpoint()
        elif kind == "insert":
            engine.insert(txn, step[1], step[2], step[3])
        elif kind == "update":
            engine.update(txn, step[1], step[2], step[3])
        elif kind == "delete":
            engine.delete(txn, step[1], step[2])
    return txn


def engine_state(engine):
    """Committed state per table; a table whose registration never became
    durable (crash before the first flush) reads as empty."""
    out = {}
    for t in TABLES:
        try:
            out[t] = dict(engine.scan(t))
        except EngineError:
            out[t] = {}
    return out


class TestKillAtRandomPoint:
    def test_recovery_restores_committed_prefix(self, tmp_path):
        """>= 200 seeded (workload, crash-point) pairs; each recovered
        state must equal the committed-prefix shadow exactly."""
        failures = []
        for seed in range(200):
            steps, snapshots = build_workload(seed)
            crash_step = random.Random(seed ^ 0xC0FFEE).randrange(len(steps))
            data_dir = str(tmp_path / f"case{seed}")
            engine = StorageEngine(
                storage="paged", data_dir=data_dir, **ENGINE_KWARGS
            )
            for t in TABLES:
                engine.register_table(t)
            run_steps(engine, steps[: crash_step + 1])
            engine.simulate_crash()

            recovered = recover_engine(data_dir, **ENGINE_KWARGS)
            expected = snapshots[crash_step]
            actual = engine_state(recovered)
            if actual != expected:
                failures.append(
                    f"seed={seed} crash_step={crash_step}/{len(steps)}: "
                    f"expected {expected}, got {actual}"
                )
            recovered.close()
        assert not failures, "\n".join(failures[:10])

    def test_recovered_engine_is_fully_usable(self, tmp_path):
        data_dir = str(tmp_path / "usable")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        txn = engine.begin()
        engine.insert(txn, "a", 1, b"one")
        engine.commit(txn)
        loser = engine.begin()
        engine.insert(loser, "a", 2, b"ghost")
        engine.wal.flush()
        engine.simulate_crash()

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        assert recovered.scan("a") == [(1, b"one")]
        # The LSN continues past the crashed run: no LSN is ever reused.
        assert recovered.lsn.current >= recovered.last_recovery_report.end_lsn
        txn = recovered.begin()
        recovered.insert(txn, "a", 3, b"post")
        recovered.commit(txn)
        assert recovered.scan("a") == [(1, b"one"), (3, b"post")]
        recovered.close()

    def test_double_crash_recovery_idempotent(self, tmp_path):
        data_dir = str(tmp_path / "twice")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        for key in range(6):
            txn = engine.begin()
            engine.insert(txn, "a", key, f"v{key}".encode())
            engine.commit(txn)
        loser = engine.begin()
        engine.update(loser, "a", 0, b"dirty")
        engine.wal.flush()
        engine.simulate_crash()

        first = recover_engine(data_dir, **ENGINE_KWARGS)
        state_after_first = engine_state(first)
        first.simulate_crash()  # crash again with no new work
        second = recover_engine(data_dir, **ENGINE_KWARGS)
        assert engine_state(second) == state_after_first
        assert second.scan("a") == [
            (k, f"v{k}".encode()) for k in range(6)
        ]
        second.close()

    def test_report_classifies_transactions(self, tmp_path):
        data_dir = str(tmp_path / "classify")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        committed = engine.begin()
        engine.insert(committed, "a", 1, b"c")
        engine.commit(committed)
        rolled = engine.begin()
        engine.insert(rolled, "a", 2, b"r")
        engine.rollback(rolled)
        loser = engine.begin()
        engine.insert(loser, "a", 3, b"l")
        engine.wal.flush()
        engine.simulate_crash()

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        report = recovered.last_recovery_report
        assert report.committed_txns == (committed.txn_id,)
        assert report.aborted_txns == (rolled.txn_id,)
        assert report.loser_txns == (loser.txn_id,)
        assert report.clr_records >= 1  # live rollback wrote CLRs
        assert report.undo_applied >= 1  # the loser insert was reverted
        assert report.tables == ("a",)
        assert recovered.scan("a") == [(1, b"c")]
        recovered.close()

    def test_txn_ids_not_reused_after_recovery(self, tmp_path):
        # Regression: the recovered engine must continue the txn-id
        # sequence past every id in the resumed WAL. A reused id would be
        # classified by the *old* run's COMMIT record on the next crash,
        # letting the new incarnation's uncommitted changes survive.
        data_dir = str(tmp_path / "txnids")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        txn = engine.begin()
        engine.insert(txn, "a", 1, b"one")
        engine.commit(txn)
        committed_id = txn.txn_id
        engine.simulate_crash()

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        loser = recovered.begin()
        assert loser.txn_id > committed_id
        recovered.insert(loser, "a", 2, b"ghost")
        recovered.wal.flush()
        recovered.simulate_crash()

        second = recover_engine(data_dir, **ENGINE_KWARGS)
        assert second.scan("a") == [(1, b"one")]
        assert loser.txn_id in second.last_recovery_report.loser_txns
        second.close()

    def test_table_registration_durable_without_explicit_flush(self, tmp_path):
        # register_table creates the .ibd immediately; the TABLE_REGISTER
        # frame must be durable with it, or recovery neither damage-scans
        # nor moves the tablespace aside.
        data_dir = str(tmp_path / "ddl")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        engine.simulate_crash()

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        assert recovered.last_recovery_report.tables == ("a",)
        assert os.path.exists(os.path.join(data_dir, "a.ibd.crashed"))
        assert recovered.scan("a") == []
        recovered.close()

    def test_rejects_fixed_kwargs(self, tmp_path):
        with pytest.raises(RecoveryError, match="storage"):
            recover_engine(str(tmp_path), storage="paged")

    def test_empty_data_dir_recovers_to_empty_engine(self, tmp_path):
        recovered = recover_engine(str(tmp_path / "nothing"))
        assert recovered.last_recovery_report.records_scanned == 0
        assert recovered.last_recovery_report.tables == ()
        recovered.close()


class TestTornPages:
    def _crashed_engine(self, tmp_path, name):
        data_dir = str(tmp_path / name)
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        for key in range(12):
            txn = engine.begin()
            engine.insert(txn, "a", key, f"v{key}".encode())
            engine.commit(txn)
        engine.checkpoint()
        engine.simulate_crash()
        return data_dir

    def test_torn_page_fuzz_state_rebuilt_from_log(self, tmp_path):
        """Corrupt random bytes in the tablespace after the crash: the
        damage is detected, filed in the report, and the recovered state
        still comes entirely from the log."""
        expected = {"a": {k: f"v{k}".encode() for k in range(12)}}
        for seed in range(20):
            data_dir = self._crashed_engine(tmp_path, f"fuzz{seed}")
            path = os.path.join(data_dir, "a.ibd")
            rng = random.Random(seed)
            data = bytearray(open(path, "rb").read())
            for _ in range(rng.randint(1, 8)):
                data[rng.randrange(len(data))] ^= rng.randint(1, 255)
            with open(path, "wb") as fh:
                fh.write(data)

            recovered = recover_engine(data_dir, **ENGINE_KWARGS)
            report = recovered.last_recovery_report
            assert engine_state(recovered)["a"] == expected["a"], f"seed={seed}"
            # Either the damage hit page bytes (torn/unreadable) or it
            # landed in slack space — but it can never corrupt the result.
            assert isinstance(report.torn_pages, tuple)
            recovered.close()

    def test_torn_page_reported_and_file_moved_aside(self, tmp_path):
        data_dir = self._crashed_engine(tmp_path, "torn")
        path = os.path.join(data_dir, "a.ibd")
        data = bytearray(open(path, "rb").read())
        # Garble the head of the *last* page (the header + first records —
        # a torn write that actually hits live bytes, not zero padding).
        from repro.storage.paged import PAGED_PAGE_SIZE

        last_page = (len(data) // PAGED_PAGE_SIZE - 1) * PAGED_PAGE_SIZE
        for i in range(4, 96):
            data[last_page + i] ^= 0xA5
        with open(path, "wb") as fh:
            fh.write(data)

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        report = recovered.last_recovery_report
        assert report.torn_pages  # the damaged page was detected
        assert all(name == "a" for name, _ in report.torn_pages)
        # The crashed file is parked as forensic residue, not deleted.
        assert os.path.exists(path + ".crashed")
        assert recovered.scan("a") == [
            (k, f"v{k}".encode()) for k in range(12)
        ]
        recovered.close()

    def test_wal_torn_tail_tolerated(self, tmp_path):
        data_dir = self._crashed_engine(tmp_path, "tail")
        wal_dir = os.path.join(data_dir, "wal")
        last = sorted(os.listdir(wal_dir))[-1]
        with open(os.path.join(wal_dir, last), "ab") as fh:
            fh.write(b"\xfe\xed\xfa\xce")  # partial frame from the crash

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        assert recovered.last_recovery_report.truncated_tail is not None
        assert recovered.scan("a") == [
            (k, f"v{k}".encode()) for k in range(12)
        ]
        recovered.close()


class TestShardedRecovery:
    def test_committed_prefix_across_shards(self, tmp_path):
        data_dir = str(tmp_path / "sharded")
        engine = ShardedEngine(
            num_shards=3, storage="paged", data_dir=data_dir, **ENGINE_KWARGS
        )
        engine.register_table("a")
        committed = {}
        for key in range(20):
            txn = engine.begin()
            engine.insert(txn, "a", key, f"v{key}".encode())
            engine.commit(txn)
            committed[key] = f"v{key}".encode()
        loser = engine.begin()
        for key in range(20, 26):
            engine.insert(loser, "a", key, b"ghost")
        engine.wal.flush()
        engine.simulate_crash()

        recovered = recover_sharded_engine(data_dir, 3, **ENGINE_KWARGS)
        assert dict(recovered.scan("a")) == committed
        report = recovered.last_recovery_report
        assert len(report.shard_reports) == 3
        assert loser.txn_id in report.loser_txns
        assert report.records_scanned == sum(
            r.records_scanned for r in report.shard_reports
        )
        # Recovered sharded engine keeps working, continuing the txn-id
        # sequence past the crashed run's ids (no reuse across recovery).
        txn = recovered.begin()
        assert txn.txn_id > loser.txn_id
        recovered.insert(txn, "a", 99, b"post")
        recovered.commit(txn)
        assert dict(recovered.scan("a"))[99] == b"post"
        recovered.close()

    def test_missing_shard_dir_rejected(self, tmp_path):
        data_dir = str(tmp_path / "partial")
        os.makedirs(os.path.join(data_dir, "shard0"))
        with pytest.raises(RecoveryError, match="missing shard directory"):
            recover_sharded_engine(data_dir, 2)


class TestBulkLoadCaveat:
    def test_bulk_load_needs_checkpoint_to_survive(self, tmp_path):
        # bulk_load bypasses the WAL by design: without a checkpoint the
        # rows are not recoverable by replay. With one, they persist in
        # the tablespace... but recovery rebuilds from the log, so the
        # documented contract is: load, checkpoint, and treat the load as
        # outside crash-recovery guarantees.
        data_dir = str(tmp_path / "bulk")
        engine = StorageEngine(storage="paged", data_dir=data_dir, **ENGINE_KWARGS)
        engine.register_table("a")
        engine.bulk_load("a", [(k, b"bulk") for k in range(4)])
        txn = engine.begin()
        engine.insert(txn, "a", 10, b"logged")
        engine.commit(txn)
        engine.simulate_crash()

        recovered = recover_engine(data_dir, **ENGINE_KWARGS)
        assert recovered.scan("a") == [(10, b"logged")]
        recovered.close()

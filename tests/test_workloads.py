"""Tests for the workload generators."""

import pytest

from repro.attacks import unique_count_fraction
from repro.errors import WorkloadError
from repro.workloads import (
    customer_insert_statements,
    generate_corpus,
    generate_customers,
    uniform_range_queries,
    zipf_frequencies,
    zipf_point_queries,
)


class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(num_documents=200, vocabulary_size=50, seed=3)
        b = generate_corpus(num_documents=200, vocabulary_size=50, seed=3)
        assert a.keyword_doc_counts == b.keyword_doc_counts

    def test_counts_match_documents(self):
        corpus = generate_corpus(num_documents=300, vocabulary_size=80, seed=1)
        for word, count in corpus.keyword_doc_counts.items():
            actual = sum(1 for d in corpus.documents if word in d.keywords)
            assert actual == count

    def test_zipf_head_heavier_than_tail(self):
        corpus = generate_corpus(num_documents=500, vocabulary_size=100, seed=2)
        top = corpus.top_keywords(100)
        head = corpus.keyword_doc_counts[top[0]]
        tail = corpus.keyword_doc_counts[top[-1]]
        assert head > 3 * tail

    def test_unique_count_regime(self):
        # The property driving the count attack: most frequent keywords have
        # unique document counts. The paper cites 63% for the Enron top-500;
        # at our 16k-document scale the same regime holds for the top-100
        # (unique fraction ~ sqrt(C)/k, see generate_corpus docstring).
        corpus = generate_corpus(seed=0)
        fraction = unique_count_fraction(corpus.auxiliary_counts(100))
        assert 0.5 <= fraction <= 0.85

    def test_bodies_contain_keywords(self):
        corpus = generate_corpus(num_documents=50, vocabulary_size=20, seed=4)
        doc = next(d for d in corpus.documents if d.keywords)
        for word in doc.keywords:
            assert word in doc.body

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            generate_corpus(num_documents=0)
        with pytest.raises(WorkloadError):
            generate_corpus(max_doc_fraction=0)


class TestCustomers:
    def test_deterministic(self):
        assert generate_customers(50, seed=1) == generate_customers(50, seed=1)

    def test_ids_sequential(self):
        rows = generate_customers(10)
        assert [r.customer_id for r in rows] == list(range(1, 11))

    def test_insert_statements_batched(self):
        rows = generate_customers(120)
        statements = customer_insert_statements(rows, batch_size=50)
        assert len(statements) == 3
        assert all(s.startswith("INSERT INTO customers") for s in statements)

    def test_statements_executable(self):
        from repro.server import MySQLServer
        from repro.workloads.tables import CUSTOMERS_DDL

        server = MySQLServer()
        session = server.connect()
        server.execute(session, CUSTOMERS_DDL)
        for statement in customer_insert_statements(generate_customers(30)):
            server.execute(session, statement)
        result = server.execute(session, "SELECT count(*) FROM customers")
        assert result.rows == ((30,),)

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            generate_customers(0)
        with pytest.raises(WorkloadError):
            customer_insert_statements(generate_customers(5), batch_size=0)


class TestQueries:
    def test_uniform_ranges_ordered(self):
        for low, high in uniform_range_queries(100, domain_bits=16, seed=1):
            assert 0 <= low <= high < (1 << 16)

    def test_deterministic(self):
        assert uniform_range_queries(10, seed=5) == uniform_range_queries(10, seed=5)

    def test_zipf_frequencies_normalized(self):
        model = zipf_frequencies([1, 2, 3, 4])
        assert abs(sum(model.values()) - 1.0) < 1e-9
        assert model[1] > model[4]

    def test_zipf_point_queries_skewed(self):
        values = list(range(20))
        queries = zipf_point_queries(values, 2000, seed=0)
        from collections import Counter

        counts = Counter(queries)
        assert counts[0] > counts[19]

    def test_empty_values_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_frequencies([])

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_range_queries(-1)
        with pytest.raises(WorkloadError):
            zipf_point_queries([1], -1)

"""Diff freshly-measured BENCH_*.json records against committed baselines.

CI regenerates the benchmark JSONs (``pytest benchmarks/``) and then runs
this tool: every record's ``ops_per_sec`` must stay within ``--tolerance``
(default ±20%) of the value committed at ``--baseline-ref`` (default
``HEAD``). Latency percentiles are compared with a looser bound
(``--latency-tolerance``, default ±60%) because p99 under a shared CI
container is far noisier than throughput best-ofs.

A record present in the baseline but missing from the fresh run is an
error — a renamed or dropped benchmark must refresh the committed JSON in
the same change. So is a *key* present in a committed record but absent
from the fresh one (e.g. a harness edit that silently stops measuring
``warm_ms``): dropped keys would otherwise pass every field comparison. The reverse (a record in the fresh run with no baseline
yet) is a *new* benchmark: it passes with a notice, since the very change
that introduces a benchmark record cannot also have it in the committed
baseline it is diffed against.

``--write`` flips the tool from gate to refresher: instead of failing on
drift, it rewrites each BENCH file as the committed baseline updated with
the freshly-measured values. Fresh values win field-by-field, but records
and keys present only in the committed version are preserved — a partial
benchmark run (one suite on one machine) must not silently delete the rest
of the baseline. Output is normalised (sorted keys, two-space indent,
trailing newline) so refresh diffs stay minimal.

Exit status: 0 when every record is within tolerance (always 0 with
``--write``), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def committed_json(path: Path, ref: str) -> dict | None:
    """The committed version of ``path`` at ``ref``; None when absent."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def relative_drift(fresh: float, baseline: float) -> float:
    if baseline == 0:
        return 0.0 if fresh == 0 else float("inf")
    return fresh / baseline - 1.0


def diff_file(path: Path, ref: str, tolerance: float, lat_tolerance: float) -> list:
    """Return a list of problem strings for one BENCH file."""
    fresh = json.loads(path.read_text())
    baseline = committed_json(path, ref)
    if baseline is None:
        print(f"{path.name}: not in {ref} (new benchmark file), skipping")
        return []
    problems = []
    for record in sorted(set(fresh) | set(baseline)):
        if record not in fresh:
            problems.append(f"{path.name}:{record}: missing from fresh run")
            continue
        if record not in baseline:
            print(
                f"{path.name}:{record}: new record (no baseline at {ref}), "
                f"passing with notice"
            )
            continue
        dropped = sorted(set(baseline[record]) - set(fresh[record]))
        if dropped:
            problems.append(
                f"{path.name}:{record}: key(s) dropped from fresh record: "
                + ", ".join(dropped)
            )
        for field, bound in (
            ("ops_per_sec", tolerance),
            ("p50_us", lat_tolerance),
            ("p99_us", lat_tolerance),
        ):
            new, old = fresh[record].get(field), baseline[record].get(field)
            if new is None or old is None:
                if new != old:
                    problems.append(
                        f"{path.name}:{record}.{field}: {old!r} -> {new!r}"
                    )
                continue
            drift = relative_drift(new, old)
            marker = "FAIL" if abs(drift) > bound else "ok"
            print(
                f"{path.name}:{record}.{field}: {old:g} -> {new:g} "
                f"({drift:+.1%}, bound ±{bound:.0%}) {marker}"
            )
            if abs(drift) > bound:
                problems.append(
                    f"{path.name}:{record}.{field} drifted {drift:+.1%} "
                    f"(bound ±{bound:.0%}): {old:g} -> {new:g}"
                )
    return problems


def write_file(path: Path, ref: str) -> None:
    """Refresh one BENCH file in place from its freshly-measured content.

    Fresh values win; committed-only records and keys survive so that a
    partial run never shrinks the baseline.
    """
    fresh = json.loads(path.read_text())
    baseline = committed_json(path, ref) or {}
    merged = {}
    for record in sorted(set(fresh) | set(baseline)):
        if record not in fresh:
            merged[record] = baseline[record]
        elif record not in baseline:
            merged[record] = fresh[record]
        else:
            merged[record] = {**baseline[record], **fresh[record]}
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"{path.name}: baseline refreshed ({len(merged)} record(s))")


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="BENCH_*.json files to diff (default: all at the repo root)",
    )
    parser.add_argument("--baseline-ref", default="HEAD")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="relative ops_per_sec bound (default 0.20 = ±20%%)",
    )
    parser.add_argument(
        "--latency-tolerance", type=float, default=0.60,
        help="relative p50/p99 bound (default 0.60 = ±60%%)",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="refresh the committed baselines in place instead of gating",
    )
    args = parser.parse_args(argv)

    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    if args.write:
        for path in files:
            write_file(path.resolve(), args.baseline_ref)
        return 0
    problems = []
    for path in files:
        problems.extend(
            diff_file(path.resolve(), args.baseline_ref,
                      args.tolerance, args.latency_tolerance)
        )
    if problems:
        print(f"\n{len(problems)} benchmark drift problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nall benchmark records within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
